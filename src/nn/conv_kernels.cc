#include "nn/conv_kernels.h"

#include <algorithm>
#include <cstring>

#include "base/error.h"
#include "base/parallel.h"
#include "base/simd.h"
#include "obs/trace.h"
#include "tensor/gemm.h"

namespace antidote::nn {

int simd_lane_width() { return simd::kLanes; }
const char* simd_isa_name() { return simd::kIsaName; }

namespace {

// One instantiation per epilogue shape so the per-element branches of the
// reference collapse to straight-line vector code. The vector body and
// the scalar tail evaluate the exact same expression with the same
// roundings (madd is mul-then-add; see base/simd.h), so the result is
// bitwise identical to fused_epilogue_scalar.
template <bool kBn, bool kRes, bool kRelu>
void epilogue_rows(float* yb, const float* resb, int out_c, int64_t pos,
                   const FusedEpilogueParams& p) {
  for (int ch = 0; ch < out_c; ++ch) {
    float* row = yb + static_cast<int64_t>(ch) * pos;
    const float* rrow =
        kRes ? resb + static_cast<int64_t>(ch) * pos : nullptr;
    const float mean_v = kBn ? p.mean[ch] : 0.f;
    const float inv_std = kBn ? p.inv_std[ch] : 0.f;
    const float gamma = kBn ? p.gamma[ch] : 0.f;
    const float beta = kBn ? p.beta[ch] : 0.f;
    const simd::vf vmean = simd::set1(mean_v);
    const simd::vf vinv = simd::set1(inv_std);
    const simd::vf vgamma = simd::set1(gamma);
    const simd::vf vbeta = simd::set1(beta);
    const simd::vf vzero = simd::zero();
    int64_t j = 0;
    for (; j + simd::kLanes <= pos; j += simd::kLanes) {
      simd::vf v = simd::load(row + j);
      if constexpr (kBn) {
        const simd::vf xh = simd::mul(simd::sub(v, vmean), vinv);
        v = simd::madd(vgamma, xh, vbeta);
      }
      if constexpr (kRes) v = simd::add(v, simd::load(rrow + j));
      if constexpr (kRelu) v = simd::max(v, vzero);
      simd::store(row + j, v);
    }
    for (; j < pos; ++j) {  // ragged tail: the identical scalar expression
      float v = row[j];
      if constexpr (kBn) {
        const float xh = (v - mean_v) * inv_std;
        v = gamma * xh + beta;
      }
      if constexpr (kRes) v += rrow[j];
      if constexpr (kRelu) v = v > 0.f ? v : 0.f;
      row[j] = v;
    }
  }
}

}  // namespace

void fused_epilogue(float* yb, const float* resb, int out_c, int64_t pos,
                    const FusedEpilogueParams& p) {
  switch ((p.bn ? 4 : 0) | (resb != nullptr ? 2 : 0) | (p.relu ? 1 : 0)) {
    case 7: epilogue_rows<true, true, true>(yb, resb, out_c, pos, p); break;
    case 6: epilogue_rows<true, true, false>(yb, resb, out_c, pos, p); break;
    case 5: epilogue_rows<true, false, true>(yb, resb, out_c, pos, p); break;
    case 4: epilogue_rows<true, false, false>(yb, resb, out_c, pos, p); break;
    case 3: epilogue_rows<false, true, true>(yb, resb, out_c, pos, p); break;
    case 2: epilogue_rows<false, true, false>(yb, resb, out_c, pos, p); break;
    case 1: epilogue_rows<false, false, true>(yb, resb, out_c, pos, p); break;
    default: break;  // nothing fused: no-op
  }
}

ANTIDOTE_NO_VECTORIZE
void fused_epilogue_scalar(float* yb, const float* resb, int out_c,
                           int64_t pos, const FusedEpilogueParams& p) {
  for (int ch = 0; ch < out_c; ++ch) {
    float* row = yb + static_cast<int64_t>(ch) * pos;
    const float* rrow =
        resb != nullptr ? resb + static_cast<int64_t>(ch) * pos : nullptr;
    const float mean_v = p.bn ? p.mean[ch] : 0.f;
    const float inv_std = p.bn ? p.inv_std[ch] : 0.f;
    const float gamma = p.bn ? p.gamma[ch] : 0.f;
    const float beta = p.bn ? p.beta[ch] : 0.f;
    for (int64_t j = 0; j < pos; ++j) {
      float v = row[j];
      if (p.bn) {
        const float xh = (v - mean_v) * inv_std;
        v = gamma * xh + beta;
      }
      if (rrow != nullptr) v += rrow[j];
      if (p.relu) v = v > 0.f ? v : 0.f;
      row[j] = v;
    }
  }
}

void gather_positions(const float* plane, const int* idx, int64_t n,
                      float* out) {
  int64_t j = 0;
  for (; j + simd::kLanes <= n; j += simd::kLanes) {
    simd::store(out + j, simd::gather(plane, idx + j));
  }
  for (; j < n; ++j) out[j] = plane[idx[j]];
}

ANTIDOTE_NO_VECTORIZE
void gather_positions_scalar(const float* plane, const int* idx, int64_t n,
                             float* out) {
  for (int64_t j = 0; j < n; ++j) out[j] = plane[idx[j]];
}

void scatter_bias_row(const float* src, float* dst, int64_t n, float bias) {
  const simd::vf vbias = simd::set1(bias);
  int64_t j = 0;
  for (; j + simd::kLanes <= n; j += simd::kLanes) {
    simd::store(dst + j, simd::add(simd::load(src + j), vbias));
  }
  for (; j < n; ++j) dst[j] = src[j] + bias;
}

ANTIDOTE_NO_VECTORIZE
void scatter_bias_row_scalar(const float* src, float* dst, int64_t n,
                             float bias) {
  for (int64_t j = 0; j < n; ++j) dst[j] = src[j] + bias;
}

void add_bias_row(float* row, int64_t n, float bias) {
  const simd::vf vbias = simd::set1(bias);
  int64_t j = 0;
  for (; j + simd::kLanes <= n; j += simd::kLanes) {
    simd::store(row + j, simd::add(simd::load(row + j), vbias));
  }
  for (; j < n; ++j) row[j] += bias;
}

int64_t conv_sample_dense(const float* xb, const ConvGeom& g, const float* w,
                          int out_c, const float* bias, float* cols, float* yb,
                          Workspace& ws) {
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  im2col(xb, g, cols);
  gemm_nn(out_c, static_cast<int>(pos), static_cast<int>(patch), 1.f, w, cols,
          0.f, yb, &ws);
  if (bias != nullptr) {
    for (int oc = 0; oc < out_c; ++oc) {
      add_bias_row(yb + static_cast<int64_t>(oc) * pos, pos, bias[oc]);
    }
  }
  return static_cast<int64_t>(out_c) * pos * patch;
}

int64_t conv_sample_masked(const float* xb, const ConvGeom& g, const float* w,
                           int out_c, const float* bias,
                           const ConvRuntimeMask& m,
                           const ConvIdentityIndices& ids, float* yb,
                           Workspace& ws) {
  const int in_c = g.in_c, h = g.in_h, wd = g.in_w;
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t pos = g.out_positions();
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;

  const std::span<const int> ch =
      m.channels.empty()
          ? std::span<const int>(ids.channels, static_cast<size_t>(in_c))
          : std::span<const int>(m.channels);
  const std::span<const int> oc_set =
      m.out_channels.empty()
          ? std::span<const int>(ids.out, static_cast<size_t>(out_c))
          : std::span<const int>(m.out_channels);
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc_set.size());
  int64_t macs = 0;

  const Workspace::Mark per_sample = ws.mark();
  if (m.positions.empty()) {
    // Channel / filter skipping only: gather kept-channel patch rows and
    // kept-filter weight rows into one GEMM.
    const int patch_k = ck * g.k_h * g.k_w;
    float* w_packed = ws.alloc_floats(static_cast<int64_t>(ok) * patch_k);
    for (int oi = 0; oi < ok; ++oi) {
      const float* src =
          w + static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * in_c * kk;
      float* dst = w_packed + static_cast<int64_t>(oi) * patch_k;
      for (int ci = 0; ci < ck; ++ci) {
        const float* block =
            src + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk;
        std::copy(block, block + kk, dst + static_cast<int64_t>(ci) * kk);
      }
    }
    float* cols = ws.alloc_floats(static_cast<int64_t>(patch_k) * pos);
    im2col_gather(
        xb, g, ch,
        std::span<const int>(ids.positions, static_cast<size_t>(pos)), cols);
    float* y_sub = ws.alloc_floats(static_cast<int64_t>(ok) * pos);
    gemm_nn(ok, static_cast<int>(pos), patch_k, 1.f, w_packed, cols, 0.f,
            y_sub, &ws);
    for (int oi = 0; oi < ok; ++oi) {
      const int oc = oc_set[static_cast<size_t>(oi)];
      std::copy(y_sub + static_cast<int64_t>(oi) * pos,
                y_sub + static_cast<int64_t>(oi + 1) * pos,
                yb + static_cast<int64_t>(oc) * pos);
    }
    macs = static_cast<int64_t>(ok) * pos * patch_k;
  } else {
    // Spatial (column) skipping: input-stationary "shift-GEMM". Only the
    // kept input columns contribute; for each kernel offset (ky, kx) one
    // [ok x ck] x [ck x pk] GEMM produces their contribution, which is
    // scatter-added at the offset output position. The result equals the
    // dense convolution over the column-masked input *exactly* (pruned
    // columns are zero and contribute nothing), while executing only
    // ok * pk * ck * k^2 MACs — dense x keep ratios. This avoids any
    // train/test mismatch: targeted dropout during TTD training computes
    // the same function densely.
    AD_CHECK(g.stride == 1 && oh == h && ow == wd)
        << " spatial runtime mask requires a grid-preserving Conv2d";
    AD_CHECK_LE(m.positions.back(), static_cast<int>(pos) - 1);
    const int pk = static_cast<int>(m.positions.size());

    // Gather kept input values: B[ci][j] = x[ch[ci], positions[j]].
    float* cols = ws.alloc_floats(static_cast<int64_t>(ck) * pk);
    for (int ci = 0; ci < ck; ++ci) {
      const float* plane =
          xb + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * h * wd;
      gather_positions(plane, m.positions.data(), pk,
                       cols + static_cast<int64_t>(ci) * pk);
    }

    // All k^2 kernel-offset weight slices stack into one [k^2*ok x ck]
    // matrix, so the whole shift-GEMM runs as a single (blocked) GEMM
    // against the shared gathered-input matrix instead of k^2 tiny ones
    // — each output row is an independent dot product, so the values
    // (and the scatter order below) are unchanged.
    float* w_packed = ws.alloc_floats(kk * ok * ck);
    float* y_sub = ws.alloc_floats(kk * static_cast<int64_t>(ok) * pk);
    for (int ky = 0; ky < g.k_h; ++ky) {
      for (int kx = 0; kx < g.k_w; ++kx) {
        // W_k[oi][ci] = weight[oc_set[oi], ch[ci], ky, kx].
        const int64_t off = static_cast<int64_t>(ky) * g.k_w + kx;
        for (int oi = 0; oi < ok; ++oi) {
          const float* src =
              w +
              (static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * in_c) *
                  kk +
              off;
          float* dst = w_packed + (off * ok + oi) * ck;
          for (int ci = 0; ci < ck; ++ci) {
            dst[ci] =
                src[static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk];
          }
        }
      }
    }
    gemm_nn(static_cast<int>(kk) * ok, pk, ck, 1.f, w_packed, cols, 0.f,
            y_sub, &ws);
    for (int ky = 0; ky < g.k_h; ++ky) {
      for (int kx = 0; kx < g.k_w; ++kx) {
        const float* y_off =
            y_sub + (static_cast<int64_t>(ky) * g.k_w + kx) * ok * pk;
        // Input column (iy, ix) feeds output (iy + pad - ky, ix + pad - kx).
        const int dy = g.pad - ky, dx = g.pad - kx;
        for (int j = 0; j < pk; ++j) {
          const int p = m.positions[static_cast<size_t>(j)];
          const int oy = p / wd + dy;
          const int ox = p % wd + dx;
          if (oy < 0 || oy >= oh || ox < 0 || ox >= ow) continue;
          const int64_t out_idx = static_cast<int64_t>(oy) * ow + ox;
          for (int oi = 0; oi < ok; ++oi) {
            yb[static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * pos +
               out_idx] += y_off[static_cast<int64_t>(oi) * pk + j];
          }
        }
      }
    }
    macs = static_cast<int64_t>(ok) * pk * ck * kk;
  }

  if (bias != nullptr) {
    for (int oi = 0; oi < ok; ++oi) {
      const int oc = oc_set[static_cast<size_t>(oi)];
      add_bias_row(yb + static_cast<int64_t>(oc) * pos, pos, bias[oc]);
    }
  }
  ws.rewind(per_sample);
  return macs;
}

// --- mask-grouped batch kernels ---------------------------------------------

void quantize_conv_weights(const float* w, int out_c, int in_c, int kk,
                           Int8ConvWeights& out) {
  const int64_t k = static_cast<int64_t>(in_c) * kk;
  out.row_stride = int8_align4(k);
  out.q.resize(static_cast<size_t>(out_c) * out.row_stride);
  out.scale.resize(static_cast<size_t>(out_c));
  out.wsum.resize(static_cast<size_t>(out_c));
  quantize_weights_rowwise(w, out_c, k, out.q.data(), out.row_stride,
                           out.scale.data(), out.wsum.data());
}

void WeightPanelCache::prepare(int out_c, int in_c, int kk,
                               bool int8_regime) {
  // Both f32 layouts top out at the full weight size; reserve the
  // kept-set copies too, so a runtime pack touches no allocator.
  // Idempotent: a repeat call on already-sized ways keeps warm panels.
  const size_t full = static_cast<size_t>(out_c) * in_c * kk;
  const size_t qrow =
      static_cast<size_t>(int8_align4(static_cast<int64_t>(in_c) * kk));
  for (Entry& e : ways) {
    if (e.panel.size() < full) {
      e.panel.resize(full);
      e.valid = false;
    }
    if (int8_regime) {
      const size_t qfull = static_cast<size_t>(out_c) * qrow;
      if (e.qpanel.size() < qfull) {
        e.qpanel.resize(qfull);
        if (e.is_int8) e.valid = false;
      }
      if (e.qwsum.size() < static_cast<size_t>(out_c))
        e.qwsum.resize(static_cast<size_t>(out_c));
      if (e.qscale.size() < static_cast<size_t>(out_c))
        e.qscale.resize(static_cast<size_t>(out_c));
    }
    e.channels.reserve(static_cast<size_t>(in_c));
    e.out_channels.reserve(static_cast<size_t>(out_c));
  }
}

namespace {

// FNV-1a over the kept sets + layout + regime: the identity of a panel,
// used by the evicted-key ring to tell capacity misses from cold ones.
uint64_t panel_key_hash(std::span<const int> ch, std::span<const int> oc,
                        bool spatial_layout, bool is_int8) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(spatial_layout ? 1u : 0u);
  mix(is_int8 ? 2u : 3u);
  mix(static_cast<uint64_t>(ch.size()));
  for (int c : ch) mix(static_cast<uint64_t>(static_cast<uint32_t>(c)));
  mix(static_cast<uint64_t>(oc.size()));
  for (int c : oc) mix(static_cast<uint64_t>(static_cast<uint32_t>(c)));
  return h;
}

// Index of the way holding this exact panel identity, or -1.
int find_way(WeightPanelCache& cache, std::span<const int> ch,
             std::span<const int> oc, bool spatial_layout, bool is_int8) {
  for (int i = 0; i < WeightPanelCache::kWays; ++i) {
    const WeightPanelCache::Entry& e = cache.ways[i];
    if (e.valid && e.spatial_layout == spatial_layout &&
        e.is_int8 == is_int8 &&
        std::equal(ch.begin(), ch.end(), e.channels.begin(),
                   e.channels.end()) &&
        std::equal(oc.begin(), oc.end(), e.out_channels.begin(),
                   e.out_channels.end())) {
      return i;
    }
  }
  return -1;
}

// Bookkeeping for a miss on `key`: classifies it cold vs capacity via the
// evicted-key ring, picks the victim way (first invalid, else LRU) and
// records the eviction. Returns the way to fill; the caller installs the
// panel and stamps it.
WeightPanelCache::Entry& take_miss_way(WeightPanelCache& cache,
                                       uint64_t key) {
  cache.misses.add(1);
  bool seen_before = false;
  for (uint64_t k : cache.evicted_keys) {
    if (k == key && k != 0) {
      seen_before = true;
      break;
    }
  }
  if (seen_before) {
    cache.capacity_misses.add(1);
  } else {
    cache.cold_misses.add(1);
  }
  int victim = -1;
  for (int i = 0; i < WeightPanelCache::kWays; ++i) {
    if (!cache.ways[i].valid) {
      victim = i;
      break;
    }
  }
  if (victim < 0) {
    victim = 0;
    for (int i = 1; i < WeightPanelCache::kWays; ++i) {
      if (cache.ways[i].stamp < cache.ways[victim].stamp) victim = i;
    }
  }
  WeightPanelCache::Entry& e = cache.ways[victim];
  if (e.valid) {
    cache.evictions.add(1);
    cache.evicted_keys[cache.evict_pos] = panel_key_hash(
        e.channels, e.out_channels, e.spatial_layout, e.is_int8);
    cache.evict_pos = (cache.evict_pos + 1) % WeightPanelCache::kEvictRing;
  }
  return e;
}

}  // namespace

void pack_weight_panel_into(const float* w, int in_c, int kk,
                            std::span<const int> ch, std::span<const int> oc,
                            bool spatial_layout, float* dst_base) {
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc.size());
  if (!spatial_layout) {
    // panel[oi][ci*kk + t] = w[oc[oi], ch[ci], t]
    const int patch_k = ck * kk;
    for (int oi = 0; oi < ok; ++oi) {
      const float* src = w + static_cast<int64_t>(oc[static_cast<size_t>(
                                 oi)]) *
                                 in_c * kk;
      float* dst = dst_base + static_cast<int64_t>(oi) * patch_k;
      for (int ci = 0; ci < ck; ++ci) {
        const float* block =
            src + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk;
        std::copy(block, block + kk, dst + static_cast<int64_t>(ci) * kk);
      }
    }
  } else {
    // panel[(t*ok + oi)][ci] = w[oc[oi], ch[ci], t] — the kernel-offset
    // stacked shift-GEMM matrix.
    for (int64_t off = 0; off < kk; ++off) {
      for (int oi = 0; oi < ok; ++oi) {
        const float* src =
            w +
            static_cast<int64_t>(oc[static_cast<size_t>(oi)]) * in_c * kk +
            off;
        float* dst = dst_base + (off * ok + oi) * ck;
        for (int ci = 0; ci < ck; ++ci) {
          dst[ci] = src[static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk];
        }
      }
    }
  }
}

const float* pack_weight_panel(const float* w, int in_c, int kk,
                               std::span<const int> ch,
                               std::span<const int> oc, bool spatial_layout,
                               WeightPanelCache& cache) {
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc.size());
  const int wi = find_way(cache, ch, oc, spatial_layout, /*is_int8=*/false);
  if (wi >= 0) {
    cache.hits.add(1);
    cache.ways[wi].stamp = ++cache.clock;
    return cache.ways[wi].panel.data();
  }
  WeightPanelCache::Entry& e = take_miss_way(
      cache, panel_key_hash(ch, oc, spatial_layout, /*is_int8=*/false));
  // Callers that reserved their plan arrive pre-sized; unreserved ad-hoc
  // paths grow the way here once and converge, like the arena.
  const size_t needed = static_cast<size_t>(ok) * ck * kk;
  if (e.panel.size() < needed) e.panel.resize(needed);
  pack_weight_panel_into(w, in_c, kk, ch, oc, spatial_layout,
                         e.panel.data());
  e.channels.assign(ch.begin(), ch.end());
  e.out_channels.assign(oc.begin(), oc.end());
  e.spatial_layout = spatial_layout;
  e.is_int8 = false;
  e.valid = true;
  e.stamp = ++cache.clock;
  return e.panel.data();
}

void pack_weight_panel_i8_into(const Int8ConvWeights& qw, int kk,
                               std::span<const int> ch,
                               std::span<const int> oc, int8_t* qdst,
                               int32_t* wsum_dst, float* scale_dst) {
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc.size());
  const int64_t patch_k = static_cast<int64_t>(ck) * kk;
  const int64_t p4 = int8_align4(patch_k);
  for (int oi = 0; oi < ok; ++oi) {
    const int occ = oc[static_cast<size_t>(oi)];
    const int8_t* src = qw.q.data() + static_cast<int64_t>(occ) *
                                          qw.row_stride;
    int8_t* dst = qdst + static_cast<int64_t>(oi) * p4;
    int32_t sum = 0;
    for (int ci = 0; ci < ck; ++ci) {
      const int8_t* block =
          src + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk;
      int8_t* out = dst + static_cast<int64_t>(ci) * kk;
      for (int t = 0; t < kk; ++t) {
        out[t] = block[t];
        sum += block[t];
      }
    }
    // Zero pad keeps both the dot product and wsum exact regardless of
    // the (biased) activation pad bytes.
    for (int64_t t = patch_k; t < p4; ++t) dst[t] = 0;
    wsum_dst[oi] = sum;
    scale_dst[oi] = qw.scale[static_cast<size_t>(occ)];
  }
}

Int8Panel pack_weight_panel_i8(const Int8ConvWeights& qw, int kk,
                               std::span<const int> ch,
                               std::span<const int> oc,
                               WeightPanelCache& cache) {
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc.size());
  const int wi = find_way(cache, ch, oc, /*spatial_layout=*/false,
                          /*is_int8=*/true);
  if (wi >= 0) {
    cache.hits.add(1);
    WeightPanelCache::Entry& e = cache.ways[wi];
    e.stamp = ++cache.clock;
    return {e.qpanel.data(), e.qwsum.data(), e.qscale.data()};
  }
  WeightPanelCache::Entry& e = take_miss_way(
      cache,
      panel_key_hash(ch, oc, /*spatial_layout=*/false, /*is_int8=*/true));
  const size_t needed = static_cast<size_t>(ok) *
                        int8_align4(static_cast<int64_t>(ck) * kk);
  if (e.qpanel.size() < needed) e.qpanel.resize(needed);
  if (e.qwsum.size() < static_cast<size_t>(ok))
    e.qwsum.resize(static_cast<size_t>(ok));
  if (e.qscale.size() < static_cast<size_t>(ok))
    e.qscale.resize(static_cast<size_t>(ok));
  pack_weight_panel_i8_into(qw, kk, ch, oc, e.qpanel.data(),
                            e.qwsum.data(), e.qscale.data());
  e.channels.assign(ch.begin(), ch.end());
  e.out_channels.assign(oc.begin(), oc.end());
  e.spatial_layout = false;
  e.is_int8 = true;
  e.valid = true;
  e.stamp = ++cache.clock;
  return {e.qpanel.data(), e.qwsum.data(), e.qscale.data()};
}

int64_t conv_batch_dense(const float* x_base, int64_t in_floats,
                         const ConvGeom& g, const float* w, int out_c,
                         const float* bias, int n, float* y_base,
                         int64_t out_floats, Workspace& ws, int64_t tile) {
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  if (tile > 0 && tile < pos) {
    // Spatially-tiled regime: lower a cache-sized [patch x tile] panel,
    // run the GEMM into a [out_c x tile] tile output, store that tile's
    // columns (bias fused into the copy), then reuse the panel for the
    // next position range. Per output element the GEMM accumulates in
    // ascending-k order regardless of the column count and the stored
    // value is src + bias either way, so the result is bitwise identical
    // to the untiled path.
    const Workspace::Mark scratch = ws.mark();
    float* cols = ws.alloc_floats(patch * tile);
    float* y_tile = ws.alloc_floats(static_cast<int64_t>(out_c) * tile);
    for (int b = 0; b < n; ++b) {
      const float* xb = x_base + static_cast<int64_t>(b) * in_floats;
      float* yb = y_base + static_cast<int64_t>(b) * out_floats;
      for (int64_t p0 = 0; p0 < pos; p0 += tile) {
        obs::PhaseScope tile_span(obs::Phase::kTile);
        const int64_t tw = std::min(tile, pos - p0);
        {
          obs::PhaseScope span(obs::Phase::kIm2col);
          parallel_for(
              0, g.in_c,
              [&](int64_t c0, int64_t c1) {
                im2col_range_pos(xb, g, static_cast<int>(c0),
                                 static_cast<int>(c1), p0, p0 + tw, cols,
                                 tw);
              },
              /*grain=*/1);
        }
        {
          obs::PhaseScope span(obs::Phase::kGemm);
          gemm_nn(out_c, static_cast<int>(tw), static_cast<int>(patch), 1.f,
                  w, cols, 0.f, y_tile, &ws);
        }
        {
          obs::PhaseScope span(obs::Phase::kScatter);
          for (int oc = 0; oc < out_c; ++oc) {
            const float* src = y_tile + static_cast<int64_t>(oc) * tw;
            float* dst = yb + static_cast<int64_t>(oc) * pos + p0;
            if (bias != nullptr) {
              scatter_bias_row(src, dst, tw, bias[oc]);
            } else {
              std::memcpy(dst, src, static_cast<size_t>(tw) * sizeof(float));
            }
          }
        }
      }
    }
    ws.rewind(scratch);
    return static_cast<int64_t>(out_c) * pos * patch * n;
  }
  const Workspace::Mark scratch = ws.mark();
  // One shared im2col buffer (the arena footprint of the pre-batched
  // path): each sample's lowering parallelizes across CHANNEL ranges
  // into disjoint rows, then its GEMM runs straight into the output (row
  // panels parallelize internally), so the batch gains parallelism
  // without an n-times scratch blowup or a restaging copy.
  float* cols = ws.alloc_floats(patch * pos);
  for (int b = 0; b < n; ++b) {
    const float* xb = x_base + static_cast<int64_t>(b) * in_floats;
    {
      obs::PhaseScope span(obs::Phase::kIm2col);
      parallel_for(
          0, g.in_c,
          [&](int64_t c0, int64_t c1) {
            im2col_range(xb, g, static_cast<int>(c0), static_cast<int>(c1),
                         cols);
          },
          /*grain=*/1);
    }
    float* yb = y_base + static_cast<int64_t>(b) * out_floats;
    {
      obs::PhaseScope span(obs::Phase::kGemm);
      gemm_nn(out_c, static_cast<int>(pos), static_cast<int>(patch), 1.f, w,
              cols, 0.f, yb, &ws);
      if (bias != nullptr) {
        for (int oc = 0; oc < out_c; ++oc) {
          add_bias_row(yb + static_cast<int64_t>(oc) * pos, pos, bias[oc]);
        }
      }
    }
  }
  ws.rewind(scratch);
  return static_cast<int64_t>(out_c) * pos * patch * n;
}

int64_t conv_batch_dense_i8(const float* x_base, int64_t in_floats,
                            const ConvGeom& g, const Int8ConvWeights& qw,
                            int out_c, const float* bias, int n,
                            float* y_base, int64_t out_floats,
                            Workspace& ws, int64_t tile) {
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  const int64_t p4 = int8_align4(patch);
  AD_CHECK_EQ(p4, qw.row_stride);
  if (tile > 0 && tile < pos) {
    // Tiled int8 regime: lower + quantize one [patch x tile] panel at a
    // time; the igemm writes its dequantized tile straight into the
    // output slot (ldy = pos). The activation scale is per tile.
    const Workspace::Mark scratch = ws.mark();
    float* cols = ws.alloc_floats(patch * tile);
    uint8_t* qcols = ws.alloc<uint8_t>(p4 * tile);
    for (int b = 0; b < n; ++b) {
      const float* xb = x_base + static_cast<int64_t>(b) * in_floats;
      float* yb = y_base + static_cast<int64_t>(b) * out_floats;
      for (int64_t p0 = 0; p0 < pos; p0 += tile) {
        obs::PhaseScope tile_span(obs::Phase::kTile);
        const int64_t tw = std::min(tile, pos - p0);
        {
          obs::PhaseScope span(obs::Phase::kIm2col);
          parallel_for(
              0, g.in_c,
              [&](int64_t c0, int64_t c1) {
                im2col_range_pos(xb, g, static_cast<int>(c0),
                                 static_cast<int>(c1), p0, p0 + tw, cols,
                                 tw);
              },
              /*grain=*/1);
        }
        float sa;
        {
          obs::PhaseScope span(obs::Phase::kQuant);
          sa = quantize_activations(cols, patch, tw, qcols);
        }
        {
          obs::PhaseScope span(obs::Phase::kGemm);
          igemm_u8s8_dequant(out_c, tw, p4, qw.q.data(), qw.row_stride,
                             qcols, qw.wsum.data(), qw.scale.data(), sa,
                             yb + p0, pos);
          if (bias != nullptr) {
            for (int oc = 0; oc < out_c; ++oc) {
              add_bias_row(yb + static_cast<int64_t>(oc) * pos + p0, tw,
                           bias[oc]);
            }
          }
        }
      }
    }
    ws.rewind(scratch);
    return static_cast<int64_t>(out_c) * pos * patch * n;
  }
  const Workspace::Mark scratch = ws.mark();
  float* cols = ws.alloc_floats(patch * pos);
  uint8_t* qcols = ws.alloc<uint8_t>(p4 * pos);
  for (int b = 0; b < n; ++b) {
    const float* xb = x_base + static_cast<int64_t>(b) * in_floats;
    {
      obs::PhaseScope span(obs::Phase::kIm2col);
      parallel_for(
          0, g.in_c,
          [&](int64_t c0, int64_t c1) {
            im2col_range(xb, g, static_cast<int>(c0), static_cast<int>(c1),
                         cols);
          },
          /*grain=*/1);
    }
    float sa;
    {
      obs::PhaseScope span(obs::Phase::kQuant);
      sa = quantize_activations(cols, patch, pos, qcols);
    }
    float* yb = y_base + static_cast<int64_t>(b) * out_floats;
    {
      obs::PhaseScope span(obs::Phase::kGemm);
      igemm_u8s8_dequant(out_c, pos, p4, qw.q.data(), qw.row_stride, qcols,
                         qw.wsum.data(), qw.scale.data(), sa, yb, pos);
      if (bias != nullptr) {
        for (int oc = 0; oc < out_c; ++oc) {
          add_bias_row(yb + static_cast<int64_t>(oc) * pos, pos, bias[oc]);
        }
      }
    }
  }
  ws.rewind(scratch);
  return static_cast<int64_t>(out_c) * pos * patch * n;
}

int64_t conv_group_masked_i8(const float* x_base, int64_t in_floats,
                             const ConvGeom& g, const Int8ConvWeights& qw,
                             int out_c, const float* bias,
                             const ConvRuntimeMask& m,
                             std::span<const int> samples,
                             const ConvIdentityIndices& ids,
                             WeightPanelCache* cache, float* y_base,
                             int64_t out_floats, Workspace& ws,
                             int64_t tile) {
  AD_CHECK(m.positions.empty())
      << " spatial-masked groups run the f32 shift-GEMM fallback";
  const int in_c = g.in_c;
  const int64_t pos = g.out_positions();
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;
  const int gs = static_cast<int>(samples.size());
  AD_CHECK_GT(gs, 0);

  const std::span<const int> ch =
      m.channels.empty()
          ? std::span<const int>(ids.channels, static_cast<size_t>(in_c))
          : std::span<const int>(m.channels);
  const std::span<const int> oc_set =
      m.out_channels.empty()
          ? std::span<const int>(ids.out, static_cast<size_t>(out_c))
          : std::span<const int>(m.out_channels);
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc_set.size());
  const int patch_k = ck * static_cast<int>(kk);
  const int64_t p4 = int8_align4(patch_k);
  const int64_t ldc = static_cast<int64_t>(gs) * pos;

  const Workspace::Mark per_group = ws.mark();
  Int8Panel panel;
  {
    obs::PhaseScope span(obs::Phase::kPack);
    if (cache != nullptr) {
      panel = pack_weight_panel_i8(qw, static_cast<int>(kk), ch, oc_set,
                                   *cache);
    } else {
      // Cross-group parallel regime: pack into this worker's arena slice.
      int8_t* qdst = ws.alloc<int8_t>(static_cast<int64_t>(ok) * p4);
      int32_t* wsum = ws.alloc<int32_t>(ok);
      float* scale = ws.alloc_floats(ok);
      pack_weight_panel_i8_into(qw, static_cast<int>(kk), ch, oc_set, qdst,
                                wsum, scale);
      panel = {qdst, wsum, scale};
    }
  }
  if (tile > 0 && tile < pos) {
    // Spatially-tiled group: each tile's compacted B matrix is
    // [patch_k x gs*tw] — every member's gathered tile columns side by
    // side — quantized per tile and consumed by one igemm whose
    // dequantized tile output is scattered before the next tile is
    // lowered.
    const int64_t ldt = static_cast<int64_t>(gs) * tile;
    float* cols = ws.alloc_floats(static_cast<int64_t>(patch_k) * ldt);
    uint8_t* qcols = ws.alloc<uint8_t>(p4 * ldt);
    float* y_sub = ws.alloc_floats(static_cast<int64_t>(ok) * ldt);
    for (int64_t p0 = 0; p0 < pos; p0 += tile) {
      obs::PhaseScope tile_span(obs::Phase::kTile);
      const int64_t tw = std::min(tile, pos - p0);
      const int64_t ldc_t = static_cast<int64_t>(gs) * tw;
      {
        obs::PhaseScope span(obs::Phase::kGather);
        parallel_for(
            0, gs,
            [&](int64_t s0, int64_t s1) {
              for (int64_t s = s0; s < s1; ++s) {
                const int b = samples[static_cast<size_t>(s)];
                im2col_gather_pos_ld(
                    x_base + static_cast<int64_t>(b) * in_floats, g, ch, p0,
                    p0 + tw, cols + s * tw, ldc_t);
              }
            },
            /*grain=*/1);
      }
      float sa;
      {
        obs::PhaseScope span(obs::Phase::kQuant);
        sa = quantize_activations(cols, patch_k, ldc_t, qcols);
      }
      {
        obs::PhaseScope span(obs::Phase::kGemm);
        igemm_u8s8_dequant(ok, ldc_t, p4, panel.panel, p4, qcols, panel.wsum,
                           panel.scale, sa, y_sub, ldc_t);
      }
      {
        obs::PhaseScope span(obs::Phase::kScatter);
        parallel_for(
            0, gs,
            [&](int64_t s0, int64_t s1) {
              for (int64_t s = s0; s < s1; ++s) {
                const int b = samples[static_cast<size_t>(s)];
                float* yb = y_base + static_cast<int64_t>(b) * out_floats;
                for (int oi = 0; oi < ok; ++oi) {
                  const int oc = oc_set[static_cast<size_t>(oi)];
                  const float* src =
                      y_sub + static_cast<int64_t>(oi) * ldc_t + s * tw;
                  float* dst = yb + static_cast<int64_t>(oc) * pos + p0;
                  if (bias != nullptr) {
                    scatter_bias_row(src, dst, tw, bias[oc]);
                  } else {
                    std::memcpy(dst, src,
                                static_cast<size_t>(tw) * sizeof(float));
                  }
                }
              }
            },
            /*grain=*/1);
      }
    }
    ws.rewind(per_group);
    return static_cast<int64_t>(ok) * pos * patch_k * gs;
  }
  float* cols = ws.alloc_floats(static_cast<int64_t>(patch_k) * ldc);
  const std::span<const int> all_pos(ids.positions,
                                     static_cast<size_t>(pos));
  {
    obs::PhaseScope span(obs::Phase::kGather);
    parallel_for(
        0, gs,
        [&](int64_t s0, int64_t s1) {
          for (int64_t s = s0; s < s1; ++s) {
            const int b = samples[static_cast<size_t>(s)];
            im2col_gather_ld(x_base + static_cast<int64_t>(b) * in_floats,
                             g, ch, all_pos, cols + s * pos, ldc);
          }
        },
        /*grain=*/1);
  }
  uint8_t* qcols = ws.alloc<uint8_t>(p4 * ldc);
  float sa;
  {
    obs::PhaseScope span(obs::Phase::kQuant);
    sa = quantize_activations(cols, patch_k, ldc, qcols);
  }
  float* y_sub = ws.alloc_floats(static_cast<int64_t>(ok) * ldc);
  {
    obs::PhaseScope span(obs::Phase::kGemm);
    igemm_u8s8_dequant(ok, ldc, p4, panel.panel, p4, qcols, panel.wsum,
                       panel.scale, sa, y_sub, ldc);
  }
  {
    obs::PhaseScope span(obs::Phase::kScatter);
    parallel_for(
        0, gs,
        [&](int64_t s0, int64_t s1) {
          for (int64_t s = s0; s < s1; ++s) {
            const int b = samples[static_cast<size_t>(s)];
            float* yb = y_base + static_cast<int64_t>(b) * out_floats;
            for (int oi = 0; oi < ok; ++oi) {
              const int oc = oc_set[static_cast<size_t>(oi)];
              const float* src =
                  y_sub + static_cast<int64_t>(oi) * ldc + s * pos;
              float* dst = yb + static_cast<int64_t>(oc) * pos;
              if (bias != nullptr) {
                scatter_bias_row(src, dst, pos, bias[oc]);
              } else {
                std::memcpy(dst, src,
                            static_cast<size_t>(pos) * sizeof(float));
              }
            }
          }
        },
        /*grain=*/1);
  }
  ws.rewind(per_group);
  return static_cast<int64_t>(ok) * pos * patch_k * gs;
}

int64_t conv_group_masked(const float* x_base, int64_t in_floats,
                          const ConvGeom& g, const float* w, int out_c,
                          const float* bias, const ConvRuntimeMask& m,
                          std::span<const int> samples,
                          const ConvIdentityIndices& ids,
                          WeightPanelCache* cache, float* y_base,
                          int64_t out_floats, Workspace& ws, int64_t tile) {
  const int in_c = g.in_c, h = g.in_h, wd = g.in_w;
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t pos = g.out_positions();
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;
  const int gs = static_cast<int>(samples.size());
  AD_CHECK_GT(gs, 0);

  const std::span<const int> ch =
      m.channels.empty()
          ? std::span<const int>(ids.channels, static_cast<size_t>(in_c))
          : std::span<const int>(m.channels);
  const std::span<const int> oc_set =
      m.out_channels.empty()
          ? std::span<const int>(ids.out, static_cast<size_t>(out_c))
          : std::span<const int>(m.out_channels);
  const int ck = static_cast<int>(ch.size());
  const int ok = static_cast<int>(oc_set.size());
  int64_t macs = 0;

  const Workspace::Mark per_group = ws.mark();
  if (m.positions.empty()) {
    // Channel / filter skipping: ONE compacted GEMM for the whole group.
    // Every member's kept-channel patches occupy a column slice of the
    // shared B matrix, and the kept-filter weight panel is packed once
    // (or reused from the cross-pass cache).
    const int patch_k = ck * g.k_h * g.k_w;
    const int64_t ldc = static_cast<int64_t>(gs) * pos;
    const float* w_panel;
    {
      obs::PhaseScope span(obs::Phase::kPack);
      if (cache != nullptr) {
        w_panel = pack_weight_panel(w, in_c, static_cast<int>(kk), ch, oc_set,
                                    /*spatial_layout=*/false, *cache);
      } else {
        // Cross-group parallel regime: pack into this worker's arena slice.
        float* panel = ws.alloc_floats(static_cast<int64_t>(ok) * patch_k);
        pack_weight_panel_into(w, in_c, static_cast<int>(kk), ch, oc_set,
                               /*spatial_layout=*/false, panel);
        w_panel = panel;
      }
    }
    if (tile > 0 && tile < pos) {
      // Spatially-tiled group (see conv_group_masked_i8 for the shape):
      // per-column GEMM accumulation order is unchanged and the scatter
      // stores the same per-element expression, so the tiled group output
      // is bitwise identical to the untiled one.
      const int64_t ldt = static_cast<int64_t>(gs) * tile;
      float* cols = ws.alloc_floats(static_cast<int64_t>(patch_k) * ldt);
      float* y_sub = ws.alloc_floats(static_cast<int64_t>(ok) * ldt);
      for (int64_t p0 = 0; p0 < pos; p0 += tile) {
        obs::PhaseScope tile_span(obs::Phase::kTile);
        const int64_t tw = std::min(tile, pos - p0);
        const int64_t ldc_t = static_cast<int64_t>(gs) * tw;
        {
          obs::PhaseScope span(obs::Phase::kGather);
          parallel_for(
              0, gs,
              [&](int64_t s0, int64_t s1) {
                for (int64_t s = s0; s < s1; ++s) {
                  const int b = samples[static_cast<size_t>(s)];
                  im2col_gather_pos_ld(
                      x_base + static_cast<int64_t>(b) * in_floats, g, ch,
                      p0, p0 + tw, cols + s * tw, ldc_t);
                }
              },
              /*grain=*/1);
        }
        {
          obs::PhaseScope span(obs::Phase::kGemm);
          gemm_nn(ok, static_cast<int>(ldc_t), patch_k, 1.f, w_panel, cols,
                  0.f, y_sub, &ws);
        }
        {
          obs::PhaseScope span(obs::Phase::kScatter);
          parallel_for(
              0, gs,
              [&](int64_t s0, int64_t s1) {
                for (int64_t s = s0; s < s1; ++s) {
                  const int b = samples[static_cast<size_t>(s)];
                  float* yb = y_base + static_cast<int64_t>(b) * out_floats;
                  for (int oi = 0; oi < ok; ++oi) {
                    const int oc = oc_set[static_cast<size_t>(oi)];
                    const float* src =
                        y_sub + static_cast<int64_t>(oi) * ldc_t + s * tw;
                    float* dst = yb + static_cast<int64_t>(oc) * pos + p0;
                    if (bias != nullptr) {
                      scatter_bias_row(src, dst, tw, bias[oc]);
                    } else {
                      std::memcpy(dst, src,
                                  static_cast<size_t>(tw) * sizeof(float));
                    }
                  }
                }
              },
              /*grain=*/1);
        }
      }
      ws.rewind(per_group);
      return static_cast<int64_t>(ok) * pos * patch_k * gs;
    }
    float* cols = ws.alloc_floats(static_cast<int64_t>(patch_k) * ldc);
    const std::span<const int> all_pos(ids.positions,
                                       static_cast<size_t>(pos));
    {
      obs::PhaseScope span(obs::Phase::kGather);
      parallel_for(
          0, gs,
          [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
              const int b = samples[static_cast<size_t>(s)];
              im2col_gather_ld(x_base + static_cast<int64_t>(b) * in_floats,
                               g, ch, all_pos, cols + s * pos, ldc);
            }
          },
          /*grain=*/1);
    }
    float* y_sub = ws.alloc_floats(static_cast<int64_t>(ok) * ldc);
    {
      obs::PhaseScope span(obs::Phase::kGemm);
      gemm_nn(ok, static_cast<int>(ldc), patch_k, 1.f, w_panel, cols, 0.f,
              y_sub, &ws);
    }
    {
      obs::PhaseScope span(obs::Phase::kScatter);
      parallel_for(
          0, gs,
          [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
              const int b = samples[static_cast<size_t>(s)];
              float* yb = y_base + static_cast<int64_t>(b) * out_floats;
              for (int oi = 0; oi < ok; ++oi) {
                const int oc = oc_set[static_cast<size_t>(oi)];
                const float* src = y_sub + static_cast<int64_t>(oi) * ldc +
                                   s * pos;
                float* dst = yb + static_cast<int64_t>(oc) * pos;
                if (bias != nullptr) {
                  // Fused copy+bias: one pass over the row, same value per
                  // element as copy-then-add.
                  scatter_bias_row(src, dst, pos, bias[oc]);
                } else {
                  std::memcpy(dst, src,
                              static_cast<size_t>(pos) * sizeof(float));
                }
              }
            }
          },
          /*grain=*/1);
    }
    macs = static_cast<int64_t>(ok) * pos * patch_k * gs;
  } else {
    // Spatial (column) skipping: the shift-GEMM (see conv_sample_masked)
    // widened across the group — the kernel-offset-stacked weight matrix
    // multiplies every member's gathered columns in one GEMM.
    AD_CHECK(g.stride == 1 && oh == h && ow == wd)
        << " spatial runtime mask requires a grid-preserving Conv2d";
    AD_CHECK_LE(m.positions.back(), static_cast<int>(pos) - 1);
    const int pk = static_cast<int>(m.positions.size());
    const int64_t ldc = static_cast<int64_t>(gs) * pk;

    float* cols = ws.alloc_floats(static_cast<int64_t>(ck) * ldc);
    {
      obs::PhaseScope span(obs::Phase::kGather);
      parallel_for(
          0, gs,
          [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
              const int b = samples[static_cast<size_t>(s)];
              const float* xb = x_base + static_cast<int64_t>(b) * in_floats;
              for (int ci = 0; ci < ck; ++ci) {
                const float* plane =
                    xb +
                    static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * h * wd;
                gather_positions(
                    plane, m.positions.data(), pk,
                    cols + static_cast<int64_t>(ci) * ldc + s * pk);
              }
            }
          },
          /*grain=*/1);
    }

    const float* w_panel;
    {
      obs::PhaseScope span(obs::Phase::kPack);
      if (cache != nullptr) {
        w_panel = pack_weight_panel(w, in_c, static_cast<int>(kk), ch, oc_set,
                                    /*spatial_layout=*/true, *cache);
      } else {
        float* panel = ws.alloc_floats(kk * static_cast<int64_t>(ok) * ck);
        pack_weight_panel_into(w, in_c, static_cast<int>(kk), ch, oc_set,
                               /*spatial_layout=*/true, panel);
        w_panel = panel;
      }
    }
    float* y_sub =
        ws.alloc_floats(kk * static_cast<int64_t>(ok) * ldc);
    // Scatter targets depend only on the group's kept positions: resolve
    // every (kernel offset, kept column) to its output index ONCE per
    // group (-1 = falls off the grid) instead of re-deriving it with
    // div/mod for every sample and filter.
    int* scatter_idx = ws.alloc<int>(kk * pk);
    for (int ky = 0; ky < g.k_h; ++ky) {
      for (int kx = 0; kx < g.k_w; ++kx) {
        const int64_t off = static_cast<int64_t>(ky) * g.k_w + kx;
        // Input column (iy, ix) feeds output (iy + pad - ky, ix + pad - kx).
        const int dy = g.pad - ky, dx = g.pad - kx;
        int* row = scatter_idx + off * pk;
        for (int j = 0; j < pk; ++j) {
          const int p = m.positions[static_cast<size_t>(j)];
          const int oy = p / wd + dy;
          const int ox = p % wd + dx;
          row[j] = (oy >= 0 && oy < oh && ox >= 0 && ox < ow)
                       ? oy * ow + ox
                       : -1;
        }
      }
    }
    {
      obs::PhaseScope span(obs::Phase::kGemm);
      gemm_nn(static_cast<int>(kk) * ok, static_cast<int>(ldc), ck, 1.f,
              w_panel, cols, 0.f, y_sub, &ws);
    }
    {
      obs::PhaseScope span(obs::Phase::kScatter);
      parallel_for(
          0, gs,
          [&](int64_t s0, int64_t s1) {
            for (int64_t s = s0; s < s1; ++s) {
              const int b = samples[static_cast<size_t>(s)];
              float* yb = y_base + static_cast<int64_t>(b) * out_floats;
              // Filter-major scatter: y_sub reads stream sequentially and
              // writes stay inside one output plane. Per output element the
              // contributions still accumulate in ascending (offset, column)
              // order — exactly the order the per-sample kernel uses.
              for (int oi = 0; oi < ok; ++oi) {
                const int oc = oc_set[static_cast<size_t>(oi)];
                float* drow = yb + static_cast<int64_t>(oc) * pos;
                for (int64_t off = 0; off < kk; ++off) {
                  const float* yrow = y_sub + (off * ok + oi) * ldc + s * pk;
                  const int* idx = scatter_idx + off * pk;
                  for (int j = 0; j < pk; ++j) {
                    if (idx[j] >= 0) drow[idx[j]] += yrow[j];
                  }
                }
                if (bias != nullptr) add_bias_row(drow, pos, bias[oc]);
              }
            }
          },
          /*grain=*/1);
    }
    macs = static_cast<int64_t>(ok) * pk * ck * kk * gs;
  }

  ws.rewind(per_group);
  return macs;
}

void shortcut_subsample_into(const float* x, int n, int in_c, int h, int w,
                             int out_c, int stride, float* y) {
  AD_CHECK_GE(out_c, in_c);
  const int oh = (h + stride - 1) / stride;
  const int ow = (w + stride - 1) / stride;
  std::memset(y, 0,
              static_cast<size_t>(n) * out_c * oh * ow * sizeof(float));
  for (int b = 0; b < n; ++b) {
    for (int c = 0; c < in_c; ++c) {
      const float* src = x + (static_cast<int64_t>(b) * in_c + c) * h * w;
      float* dst = y + (static_cast<int64_t>(b) * out_c + c) * oh * ow;
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          dst[static_cast<int64_t>(yy) * ow + xx] =
              src[static_cast<int64_t>(yy) * stride * w + xx * stride];
        }
      }
    }
  }
}

size_t conv_batch_dense_scratch_bytes(const ConvGeom& g, int out_c, int n,
                                      bool int8_regime, int64_t tile) {
  // Batch-independent: one shared im2col buffer plus one sample's GEMM
  // panels (samples run sequentially between the same marks).
  (void)n;
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  if (tile > 0 && tile < pos) {
    // Tiled regime: the tile panel + tile output + the GEMM's panels at
    // tile width (gemm_nn_scratch_bytes is monotone nondecreasing in n,
    // so the full tile bounds the ragged tail).
    size_t worst =
        Workspace::align_up(static_cast<size_t>(patch) * tile *
                            sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(out_c) * tile *
                            sizeof(float)) +
        gemm_nn_scratch_bytes(out_c, static_cast<int>(tile),
                              static_cast<int>(patch));
    if (int8_regime) {
      const size_t i8_path =
          Workspace::align_up(static_cast<size_t>(patch) * tile *
                              sizeof(float)) +
          Workspace::align_up(static_cast<size_t>(int8_align4(patch)) *
                              tile);
      worst = std::max(worst, i8_path);
    }
    return worst;
  }
  size_t worst = Workspace::align_up(static_cast<size_t>(patch) * pos *
                                     sizeof(float)) +
                 gemm_nn_scratch_bytes(out_c, static_cast<int>(pos),
                                       static_cast<int>(patch));
  if (int8_regime) {
    // Int8 dense path: the shared f32 im2col buffer plus the quantized
    // column block (the igemm writes straight into the output slot and
    // needs no pack panels).
    const size_t i8_path =
        Workspace::align_up(static_cast<size_t>(patch) * pos *
                            sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(int8_align4(patch)) * pos);
    worst = std::max(worst, i8_path);
  }
  return worst;
}

size_t conv_group_masked_scratch_bytes(const ConvGeom& g, int out_c, int gs,
                                       bool int8_regime, int64_t tile,
                                       bool spatial_masks) {
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;
  const bool tiled = tile > 0 && tile < pos;
  // The tiled channel path allocates its buffers at the full-tile group
  // width gs * tile; untiled at gs * pos.
  const int64_t ldc = static_cast<int64_t>(gs) * (tiled ? tile : pos);
  // Channel/filter path with full index sets (the weight panel lives in
  // the cross-pass cache, not the arena).
  size_t channel_path =
      Workspace::align_up(static_cast<size_t>(patch) * ldc * sizeof(float)) +
      Workspace::align_up(static_cast<size_t>(out_c) * ldc * sizeof(float)) +
      gemm_nn_scratch_bytes(out_c, static_cast<int>(ldc),
                            static_cast<int>(patch));
  size_t worst = channel_path;
  if (spatial_masks && g.stride == 1 && g.out_h() == g.in_h &&
      g.out_w() == g.in_w) {
    // Spatial shift-GEMM path with every position kept: gathered columns,
    // the stacked-offset GEMM output, the per-group scatter-index table,
    // then the GEMM's own panels on top. (Under the int8 regime spatial
    // groups still run this f32 fallback, so it stays in the max.) This
    // path never tiles, so its footprint is always the full gs * pos
    // width regardless of `tile`.
    const int64_t ldf = static_cast<int64_t>(gs) * pos;
    const size_t spatial_path =
        Workspace::align_up(static_cast<size_t>(g.in_c) * ldf *
                            sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(kk) * out_c * ldf *
                            sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(kk) * pos * sizeof(int)) +
        gemm_nn_scratch_bytes(static_cast<int>(kk) * out_c,
                              static_cast<int>(ldf), g.in_c);
    worst = std::max(worst, spatial_path);
  }
  if (int8_regime) {
    // Int8 channel path: f32 gathered columns + quantized columns + the
    // dequantized y_sub (no GEMM pack panels). The quantized block can
    // exceed the f32 path's gemm panels, so it is sized explicitly.
    const size_t i8_path =
        Workspace::align_up(static_cast<size_t>(patch) * ldc *
                            sizeof(float)) +
        Workspace::align_up(static_cast<size_t>(int8_align4(patch)) * ldc) +
        Workspace::align_up(static_cast<size_t>(out_c) * ldc *
                            sizeof(float));
    worst = std::max(worst, i8_path);
  }
  return worst;
}

size_t conv_group_masked_slice_bytes(const ConvGeom& g, int out_c, int gs,
                                     bool int8_regime, int64_t tile,
                                     bool spatial_masks) {
  // Cache-less regime: the worker packs the kept-filter weight panel into
  // its slice. Both f32 layouts top out at the full weight size (full
  // kept sets); under int8 the worker may instead pack the int8 panel +
  // wsum + scale triplet, so the larger of the two pack footprints is
  // reserved.
  const int64_t kk = static_cast<int64_t>(g.k_h) * g.k_w;
  size_t pack_bytes = Workspace::align_up(
      static_cast<size_t>(out_c) * g.in_c * kk * sizeof(float));
  if (int8_regime) {
    const size_t i8_pack =
        Workspace::align_up(static_cast<size_t>(out_c) *
                            int8_align4(static_cast<int64_t>(g.in_c) * kk)) +
        Workspace::align_up(static_cast<size_t>(out_c) * sizeof(int32_t)) +
        Workspace::align_up(static_cast<size_t>(out_c) * sizeof(float));
    pack_bytes = std::max(pack_bytes, i8_pack);
  }
  return pack_bytes + conv_group_masked_scratch_bytes(
                          g, out_c, gs, int8_regime, tile, spatial_masks);
}

}  // namespace antidote::nn
