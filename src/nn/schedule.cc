#include "nn/schedule.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"

namespace antidote::nn {

CosineSchedule::CosineSchedule(double base_lr, int total_epochs,
                               double final_lr)
    : base_(base_lr), final_(final_lr), total_(total_epochs) {
  AD_CHECK_GT(total_epochs, 0);
}

double CosineSchedule::lr(int epoch) const {
  const int t = std::clamp(epoch, 0, total_ - 1);
  const double frac =
      total_ > 1 ? static_cast<double>(t) / (total_ - 1) : 1.0;
  return final_ + 0.5 * (base_ - final_) * (1.0 + std::cos(M_PI * frac));
}

StepSchedule::StepSchedule(double base_lr, std::vector<int> milestones,
                           double gamma)
    : base_(base_lr), gamma_(gamma), milestones_(std::move(milestones)) {
  AD_CHECK(std::is_sorted(milestones_.begin(), milestones_.end()));
}

double StepSchedule::lr(int epoch) const {
  double value = base_;
  for (int m : milestones_) {
    if (epoch >= m) value *= gamma_;
  }
  return value;
}

WarmupSchedule::WarmupSchedule(std::unique_ptr<LrSchedule> inner,
                               int warmup_epochs)
    : inner_(std::move(inner)), warmup_(warmup_epochs) {
  AD_CHECK_GE(warmup_, 0);
  AD_CHECK(inner_ != nullptr);
}

double WarmupSchedule::lr(int epoch) const {
  if (epoch < warmup_) {
    return inner_->lr(warmup_) * (epoch + 1) / static_cast<double>(warmup_ + 1);
  }
  return inner_->lr(epoch);
}

}  // namespace antidote::nn
