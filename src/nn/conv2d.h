// 2-d convolution (NCHW, square kernel, symmetric padding) lowered to GEMM
// via im2col, with optional *sparse runtime execution*:
//
// Before a forward pass, a caller (AntiDote's dynamic pruning gate) may
// install per-sample runtime masks naming which input channels and which
// output spatial positions to compute. The layer then gathers only the kept
// channels/positions into the GEMM, scatters results back (pruned positions
// stay zero) and reports the actually executed multiply-accumulates, so
// measured FLOPs reductions are real savings rather than bookkeeping.
// Masks apply to exactly one forward pass and are consumed by it.
//
// Both the dense and masked paths draw every scratch buffer (im2col
// columns, gathered weights, staging outputs, index sets) from a workspace
// arena: the ExecutionContext's when one is threaded through, a per-thread
// fallback otherwise. With a context the output tensor itself lives in the
// arena too, making steady-state inference allocation-free.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "nn/module.h"
#include "tensor/im2col.h"

namespace antidote::nn {

// Per-sample sparse-execution instruction for one forward pass.
struct ConvRuntimeMask {
  // Kept input-channel indices, strictly increasing. Empty = keep all.
  std::vector<int> channels;
  // Kept *input* spatial columns (flattened h*w+x), strictly increasing.
  // Empty = keep all. Executed with an input-stationary shift-GEMM that
  // computes exactly conv(input with the other columns zeroed) while
  // performing only keep-ratio x dense MACs. Only valid when the
  // convolution preserves the spatial grid (stride 1, out size == in).
  std::vector<int> positions;
  // Kept output-filter indices, strictly increasing. Empty = keep all.
  // Used by *static* filter pruning, where the producing layer also skips
  // its pruned filters (dynamic attention pruning cannot: the attention is
  // computed from the full feature map).
  std::vector<int> out_channels;
};

class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel_size, int stride = 1,
         int padding = 0, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string type_name() const override { return "Conv2d"; }
  int64_t last_macs() const override { return last_macs_; }

  // --- sparse runtime execution ---
  // Installs per-sample masks for the next forward pass only. The vector
  // size must equal the batch size of that forward. Backward through a
  // masked forward is not supported (masking is a test-phase mechanism).
  void set_runtime_masks(std::vector<ConvRuntimeMask> masks);
  // Borrowing variant for the hot path: copies the masks into internal
  // storage whose capacity is reused across passes, so steady-state
  // serving does not allocate per pass.
  void set_runtime_masks(std::span<const ConvRuntimeMask> masks);
  bool has_pending_masks() const { return masks_pending_; }

  // --- plan-executor interface ---
  // Consumes the pending per-sample masks exactly as a forward pass would
  // (masks apply to one pass only) and returns a view of them; empty when
  // none are pending. The view stays valid until the next set_runtime_masks
  // call on this layer.
  std::span<const ConvRuntimeMask> take_runtime_masks();
  // Records an execution performed outside the module (the InferencePlan
  // runs the shared kernels itself): keeps last_macs()/introspection
  // consistent and clears the backward cache so a stale backward() fails
  // loudly.
  void note_external_execution(int64_t macs, bool masked);

  // --- introspection ---
  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }
  int kernel_size() const { return k_; }
  int stride() const { return stride_; }
  int padding() const { return pad_; }
  bool has_bias() const { return has_bias_; }
  // Dense MACs for one sample given an input height/width.
  int64_t dense_macs_per_sample(int in_h, int in_w) const;

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  void check_masks(std::span<const ConvRuntimeMask> masks) const;
  // ctx == nullptr: plain semantics (heap output, input cached for
  // backward, scratch from the thread-local arena).
  Tensor forward_impl(const Tensor& x, ExecutionContext* ctx);
  Tensor forward_dense(const Tensor& x, ExecutionContext* ctx);
  Tensor forward_masked(const Tensor& x,
                        const std::vector<ConvRuntimeMask>& masks,
                        ExecutionContext* ctx);

  int in_c_, out_c_, k_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;  // [out_c, in_c, k, k]
  Parameter bias_;    // [out_c] (unused when has_bias_ == false)

  // pending/active ping-pong: set_runtime_masks fills pending, the next
  // forward swaps it into active. Neither vector is ever clear()ed — stale
  // elements stay behind as warm storage so the per-pass copy-assign
  // reuses their inner vectors' capacity (masks_pending_ tracks validity).
  std::vector<ConvRuntimeMask> pending_masks_;
  std::vector<ConvRuntimeMask> active_masks_;
  bool masks_pending_ = false;
  bool last_forward_was_masked_ = false;
  Tensor cached_input_;  // for backward
  int64_t last_macs_ = 0;
};

}  // namespace antidote::nn
