// Learning-rate schedules. The paper trains TTD with cosine decay
// (SGDR-style, 0.1 -> 0); step decay and constant schedules are provided
// for the baselines' finetuning runs.
#pragma once

#include <memory>
#include <vector>

namespace antidote::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate for a 0-based epoch index.
  virtual double lr(int epoch) const = 0;
};

// lr(t) = final + 0.5 * (base - final) * (1 + cos(pi * t / total)).
class CosineSchedule : public LrSchedule {
 public:
  CosineSchedule(double base_lr, int total_epochs, double final_lr = 0.0);
  double lr(int epoch) const override;

 private:
  double base_, final_;
  int total_;
};

// Multiplies base_lr by `gamma` at each listed epoch.
class StepSchedule : public LrSchedule {
 public:
  StepSchedule(double base_lr, std::vector<int> milestones, double gamma);
  double lr(int epoch) const override;

 private:
  double base_, gamma_;
  std::vector<int> milestones_;
};

class ConstantSchedule : public LrSchedule {
 public:
  explicit ConstantSchedule(double lr) : lr_(lr) {}
  double lr(int /*epoch*/) const override { return lr_; }

 private:
  double lr_;
};

// Linear warmup for `warmup_epochs`, then delegates to `inner`.
class WarmupSchedule : public LrSchedule {
 public:
  WarmupSchedule(std::unique_ptr<LrSchedule> inner, int warmup_epochs);
  double lr(int epoch) const override;

 private:
  std::unique_ptr<LrSchedule> inner_;
  int warmup_;
};

}  // namespace antidote::nn
