// Convolution kernels shared by the Conv2d module and the InferencePlan
// executor.
//
// Both callers must produce bit-identical results for the same input, so
// the dense im2col+GEMM lowering and the masked (channel / spatial /
// filter skipping) execution live here exactly once. Two granularities are
// provided:
//
//   - per-sample kernels (conv_sample_*): the module walk's building
//     blocks. Callers own the batch loop, output placement and any fused
//     epilogue; the kernels own the arithmetic and draw every scratch
//     buffer from the caller's Workspace between a mark/rewind pair the
//     *caller* brackets.
//   - mask-grouped batch kernels (conv_batch_dense / conv_group_masked):
//     the plan executor's hot path. A *mask group* is a set of batch
//     samples whose runtime masks are identical; the group kernel gathers
//     every member's kept inputs into ONE compacted activation block,
//     packs the kept filter rows ONCE into a weight panel (cached across
//     passes by kept set, so static filter masks never repack) and runs a
//     single multi-sample GEMM instead of per-sample scatter kernels.
//     Per-element accumulation order is unchanged, so grouped outputs are
//     bitwise identical to the per-sample kernels'.
//
// The matching *_scratch_bytes functions report the worst-case arena
// high-water of one call, mirroring the allocation sequence (including
// the packed-GEMM panels) byte for byte so the plan compiler can size an
// arena before the first pass ever runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/conv2d.h"
#include "nn/int8_kernels.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace antidote::nn {

// --- SIMD-vectorized hot-path primitives ----------------------------------
//
// The scalar glue around the GEMM (fused epilogue, mask gather/scatter,
// bias) runs at SIMD width (AVX2/NEON via base/simd.h, compile-time
// selected by the ANTIDOTE_SIMD build option). Every primitive is bitwise
// identical to its *_scalar reference: per-element IEEE ops in the same
// order with the same roundings (no FMA contraction — see base/simd.h),
// ragged tails finished by the identical scalar expression. The *_scalar
// functions are genuinely scalar (autovectorization suppressed); the
// parity suite asserts bit-equality and the micro-benchmarks use them as
// the scalar leg.

// Compiled lane width (8 = AVX2, 4 = NEON, 1 = scalar fallback) and ISA
// name of the kernels in this library build.
int simd_lane_width();
const char* simd_isa_name();

// Per-channel fused conv epilogue: for each output channel row of `pos`
// values, optionally BatchNorm (the exact BatchNorm2d eval expression:
// gamma * ((v - mean) * inv_std) + beta), then optional residual add,
// then optional ReLU — in that order, matching the module walk op for op.
struct FusedEpilogueParams {
  const float* mean = nullptr;     // [out_c] (bn only)
  const float* inv_std = nullptr;  // [out_c] (bn only)
  const float* gamma = nullptr;    // [out_c] (bn only)
  const float* beta = nullptr;     // [out_c] (bn only)
  bool bn = false;
  bool relu = false;
};

// Applies the epilogue in place over yb [out_c, pos]; `resb` (nullable)
// is the residual with the same layout. A no-op combination (no bn, no
// residual, no relu) returns immediately.
void fused_epilogue(float* yb, const float* resb, int out_c, int64_t pos,
                    const FusedEpilogueParams& p);
void fused_epilogue_scalar(float* yb, const float* resb, int out_c,
                           int64_t pos, const FusedEpilogueParams& p);

// Mask gather: out[j] = plane[idx[j]] for `n` kept positions.
void gather_positions(const float* plane, const int* idx, int64_t n,
                      float* out);
void gather_positions_scalar(const float* plane, const int* idx, int64_t n,
                             float* out);

// Group scatter row: dst[j] = src[j] + bias (one kept filter's compacted
// GEMM output row placed into its output plane with the bias fused in).
void scatter_bias_row(const float* src, float* dst, int64_t n, float bias);
void scatter_bias_row_scalar(const float* src, float* dst, int64_t n,
                             float bias);

// In-place bias add over one output row.
void add_bias_row(float* row, int64_t n, float bias);

// Identity index sets used when a mask component is empty (= keep all).
// All three spans may alias one shared ascending iota array (the plan
// compiler builds one sized at the plan's max dimension).
struct ConvIdentityIndices {
  const int* channels = nullptr;   // [g.in_c]
  const int* out = nullptr;        // [out_c]
  const int* positions = nullptr;  // [g.out_positions()]
};

// Dense sample: yb[out_c, out_positions] = W * im2col(xb). `cols` is
// caller-provided scratch of g.patch_rows() * g.out_positions() floats
// (hoisted out of the batch loop). Applies `bias` (nullable) over every
// output position. Returns the MACs executed.
int64_t conv_sample_dense(const float* xb, const ConvGeom& g, const float* w,
                          int out_c, const float* bias, float* cols, float* yb,
                          Workspace& ws);

// Masked sample: executes only the kept channels/positions/filters of `m`
// and scatters into yb, which the caller must have zero-filled. Applies
// `bias` (nullable) to the kept output channels over every position,
// matching the dense path's semantics for the skipped entries (they stay
// zero pre-bias). Returns the MACs executed.
int64_t conv_sample_masked(const float* xb, const ConvGeom& g, const float* w,
                           int out_c, const float* bias,
                           const ConvRuntimeMask& m,
                           const ConvIdentityIndices& ids, float* yb,
                           Workspace& ws);

// --- mask-grouped batch kernels -------------------------------------------

// A copyable relaxed atomic counter. WeightPanelCache lives inside PlanOp,
// which must stay movable (plans hold ops in a vector), and its counters
// are read by observers (plan-dump, tests) while pool workers may still be
// incrementing them — a plain int64 there is a data race. Relaxed ordering
// is all a statistic needs; copy/move snapshot the current value.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o) : v_(o.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.get(), std::memory_order_relaxed);
    return *this;
  }
  void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Cross-pass cache for the kept-filter weight panels of one conv site.
//
// The cache is a kWays-way fully-associative set with exact LRU
// replacement. A single-entry cache was miss-dominated the moment a
// sequential pass interleaved >= 2 distinct masks per conv (the batch
// executor walks groups in bucket order, so masks A, B, A, B evicted
// each other every pass — BENCH_plan showed 228 misses vs 80 hits on
// vgg16 at only 2 distinct masks). Four ways cover the bench and serving
// sweet spot (<= 4 distinct masks per conv per pass hit 100% after the
// first pass); beyond that, LRU under a strided repeat pattern degrades
// to the old always-miss behaviour, which the capacity-miss counter now
// makes visible instead of silent.
//
// prepare() sizes every way for the worst kept set (the plan calls it
// from reserve(), so a reserved serving path never packs through the
// allocator; unreserved callers grow lazily on first pack and converge).
// A hit (same kept sets, layout and numeric regime as a cached panel)
// skips the pack entirely. The cache copies weight values, so it shares
// the plan's staleness contract: mutating weights in eval mode requires
// ConvNet::invalidate_plan().
//
// Miss taxonomy (misses == cold_misses + capacity_misses): a ring of
// recently-evicted key hashes classifies each miss as *capacity* (this
// key was cached before and got evicted — more ways or fewer distinct
// masks would have hit) or *cold* (first sighting). `evictions` counts
// valid entries overwritten; `bypass` counts groups executed in the
// cross-group parallel regime, where the cache is deliberately not
// consulted (each worker packs into its private slice).
struct WeightPanelCache {
  static constexpr int kWays = 4;
  struct Entry {
    std::vector<float> panel;      // f32 panel (either layout)
    std::vector<int8_t> qpanel;    // int8 channel-layout panel (int8 regime)
    std::vector<int32_t> qwsum;    // per kept filter: sum of its int8 bytes
    std::vector<float> qscale;     // per kept filter: dequant scale
    std::vector<int> channels;     // kept set the panel encodes
    std::vector<int> out_channels;
    bool spatial_layout = false;   // channel [ok,ck*kk] vs shift [kk*ok,ck]
    bool is_int8 = false;
    bool valid = false;
    uint64_t stamp = 0;  // LRU clock value of the last touch
  };
  Entry ways[kWays];
  uint64_t clock = 0;  // owner-thread only (sequential regime)
  static constexpr int kEvictRing = 32;
  uint64_t evicted_keys[kEvictRing] = {};
  int evict_pos = 0;
  RelaxedCounter hits;
  RelaxedCounter misses;
  RelaxedCounter cold_misses;
  RelaxedCounter capacity_misses;
  RelaxedCounter evictions;
  RelaxedCounter bypass;

  // Reserves worst-case storage (full kept sets, either layout) in every
  // way; with `int8_regime` the int8 panel arrays are sized as well (the
  // f32 arrays always are — spatial-masked groups fall back to the f32
  // shift-GEMM under the int8 regime and must still pack allocation-free).
  void prepare(int out_c, int in_c, int kk, bool int8_regime = false);
};

// Per-conv int8 weights, quantized once at plan-compile time
// (per-output-channel symmetric; see nn/int8_kernels.h for the scheme).
// `q` holds [out_c][row_stride] zero-padded rows; `wsum`/`scale` are the
// full-row byte sums and dequant scales the dense path consumes directly.
struct Int8ConvWeights {
  std::vector<int8_t> q;
  std::vector<float> scale;   // [out_c]
  std::vector<int32_t> wsum;  // [out_c]
  int64_t row_stride = 0;     // int8_align4(in_c * kk)
  bool empty() const { return q.empty(); }
};

// Quantizes the dense [out_c][in_c*kk] f32 weight tensor into `out`
// (idempotent re-sizing; deterministic across builds).
void quantize_conv_weights(const float* w, int out_c, int in_c, int kk,
                           Int8ConvWeights& out);

// Packs the kept-filter weight panel for the kept sets into `dst`
// (ok*ck*kk floats). Channel layout: panel[oi][ci*kk + t] =
// w[oc[oi], ch[ci], t]. Spatial (shift-GEMM) layout: panel[(t*ok + oi)][ci]
// = w[oc[oi], ch[ci], t], the kernel-offset-stacked matrix.
void pack_weight_panel_into(const float* w, int in_c, int kk,
                            std::span<const int> ch, std::span<const int> oc,
                            bool spatial_layout, float* dst);

// Cached variant: packs into `cache` only on a miss.
const float* pack_weight_panel(const float* w, int in_c, int kk,
                               std::span<const int> ch,
                               std::span<const int> oc, bool spatial_layout,
                               WeightPanelCache& cache);

// The int8 kept-filter panel of one mask group: rows of
// int8_align4(ck*kk) bytes gathered from the plan's Int8ConvWeights,
// with the per-row byte sums (for the u8-bias correction) and dequant
// scales gathered alongside.
struct Int8Panel {
  const int8_t* panel = nullptr;
  const int32_t* wsum = nullptr;
  const float* scale = nullptr;
};

// Packs the int8 channel-layout panel into caller storage (qdst holds
// ok * int8_align4(ck*kk) bytes; wsum_dst/scale_dst hold ok entries).
void pack_weight_panel_i8_into(const Int8ConvWeights& qw, int kk,
                               std::span<const int> ch,
                               std::span<const int> oc, int8_t* qdst,
                               int32_t* wsum_dst, float* scale_dst);

// Cached int8 variant (channel layout only); shares ways, LRU state and
// counters with the f32 panels of the same site.
Int8Panel pack_weight_panel_i8(const Int8ConvWeights& qw, int kk,
                               std::span<const int> ch,
                               std::span<const int> oc,
                               WeightPanelCache& cache);

// Dense batch step: one shared im2col buffer; each sample's lowering
// parallelizes across channel ranges, then its GEMM runs straight into
// its output slot (parallelizing internally) and `bias` is applied. x/y
// bases are batch-major with the given per-sample strides. Bitwise
// identical to n conv_sample_dense calls. Returns MACs.
//
// `tile` > 0 enables spatially-tiled execution: output positions are
// processed in column tiles of that width — lowering fills a cache-sized
// [patch x tile] panel, the GEMM consumes it into a [out_c x tile] tile
// output, and the tile's columns are stored (bias fused) before the next
// tile is lowered — so im2col scratch is O(patch * tile) instead of
// O(patch * out_positions). Tiling splits only independent GEMM output
// columns (per-column accumulation order untouched) and the per-element
// bias expression is unchanged, so the f32 output is bitwise identical to
// the untiled path. tile <= 0 or >= out_positions() runs untiled.
int64_t conv_batch_dense(const float* x_base, int64_t in_floats,
                         const ConvGeom& g, const float* w, int out_c,
                         const float* bias, int n, float* y_base,
                         int64_t out_floats, Workspace& ws,
                         int64_t tile = 0);

// One mask group of a masked batch conv. `samples` are the member batch
// indices (all sharing kept sets `m`); the caller zero-fills y beforehand
// and applies any fused epilogue afterwards. Bias semantics match
// conv_sample_masked. Returns the MACs executed for the whole group.
//
// Two invocation regimes:
//   - sequential (cache != nullptr): groups run one after another on the
//     caller's thread; gather/scatter parallelize across the group's
//     members and the compacted GEMM parallelizes internally; the weight
//     panel comes from the cross-pass cache.
//   - cross-group parallel (cache == nullptr): the caller runs several
//     groups concurrently, each on a pool worker with `ws` bound to a
//     private arena slice (Workspace::bind_external). The weight panel is
//     packed into the slice (a shared cache would race, and with >= 2
//     distinct kept sets per pass it could not hit anyway) and the
//     internal parallel_fors run inline under the nested-dispatch guard.
//     Distinct groups cover distinct samples, so outputs are disjoint and
//     the result is bitwise identical to sequential group order.
// `tile` > 0 tiles the CHANNEL/FILTER path over output positions (the
// compacted B matrix becomes [patch_k x group*tile] per tile; f32 output
// stays bitwise identical — see conv_batch_dense). The spatial shift-GEMM
// path ignores `tile`: its scatter-add accumulates across kernel offsets,
// so column tiling would not keep it a pure output-column split.
int64_t conv_group_masked(const float* x_base, int64_t in_floats,
                          const ConvGeom& g, const float* w, int out_c,
                          const float* bias, const ConvRuntimeMask& m,
                          std::span<const int> samples,
                          const ConvIdentityIndices& ids,
                          WeightPanelCache* cache, float* y_base,
                          int64_t out_floats, Workspace& ws,
                          int64_t tile = 0);

// Int8-regime dense batch step: im2col (f32, shared buffer) -> per-sample
// dynamic activation quantization -> u8xs8 igemm with dequant fused into
// the store (straight into the output slot) -> bias rows. Same call
// contract as conv_batch_dense otherwise. Returns the LOGICAL MACs (the
// f32-equivalent count, so cost accounting is regime-comparable).
// `tile` > 0 tiles as in conv_batch_dense. The activation scale is then
// computed per TILE rather than per tensor (each tile panel is quantized
// independently), so tiled int8 output is not bitwise identical to the
// untiled int8 path — it stays within the same relative-error budget
// against f32 (per-tile scales are at least as tight as the per-tensor
// one).
int64_t conv_batch_dense_i8(const float* x_base, int64_t in_floats,
                            const ConvGeom& g, const Int8ConvWeights& qw,
                            int out_c, const float* bias, int n,
                            float* y_base, int64_t out_floats,
                            Workspace& ws, int64_t tile = 0);

// Int8-regime mask group, CHANNEL/FILTER masks only (the caller routes
// groups with spatial positions to the f32 shift-GEMM — a documented
// mixed-regime fallback). Pipeline: pack int8 kept-filter panel (cached
// or into the worker slice, like the f32 path) -> f32 im2col gather ->
// per-group dynamic activation quantization into the VNNI layout ->
// u8xs8 igemm writing dequantized f32 y_sub -> the f32 scatter. The
// caller's fused epilogue then applies unchanged to the f32 output.
// Same invocation regimes as conv_group_masked. Returns logical MACs.
// `tile` > 0 tiles the channel path over output positions (per-tile
// activation scales, like conv_batch_dense_i8; f32 gather/scatter and the
// caller's epilogue are unchanged).
int64_t conv_group_masked_i8(const float* x_base, int64_t in_floats,
                             const ConvGeom& g, const Int8ConvWeights& qw,
                             int out_c, const float* bias,
                             const ConvRuntimeMask& m,
                             std::span<const int> samples,
                             const ConvIdentityIndices& ids,
                             WeightPanelCache* cache, float* y_base,
                             int64_t out_floats, Workspace& ws,
                             int64_t tile = 0);

// Worst-case arena bytes of one conv_batch_dense call at batch n. With
// `int8_regime` the bound also covers the int8 dense path (quantized
// column buffer; the f32 formula is kept in the max so a regime flip
// after reserve stays safe). `tile` must match the execution call: the
// tiled formulas replace the full [patch x pos] panel with the tile panel
// + tile output, and gemm_nn_scratch_bytes is monotone in n, so the
// full-width tile bounds every ragged tail exactly.
size_t conv_batch_dense_scratch_bytes(const ConvGeom& g, int out_c, int n,
                                      bool int8_regime = false,
                                      int64_t tile = 0);

// Worst-case arena bytes of one conv_group_masked call with a group of
// `gs` samples, maximized over every mask shape the geometry admits (full
// index sets; the spatial shift-GEMM path only when the conv preserves
// the grid AND `spatial_masks`; the int8 channel path when `int8_regime`).
// Monotone in gs, so a batch's worst case over any grouping is the
// single-group-of-n value (groups run sequentially between rewinds).
// `tile` must match the execution call; the spatial path never tiles, so
// its untiled O(gs * pos) footprint stays in the max whenever it is
// accounted. Callers that know position masks can never reach the conv
// (no spatially-aligned gate feeds it) pass spatial_masks = false, which
// is what lets a tiled plan's reserved arena stay sub-linear in the
// output grid; the default keeps the unconditional bound.
size_t conv_group_masked_scratch_bytes(const ConvGeom& g, int out_c, int gs,
                                       bool int8_regime = false,
                                       int64_t tile = 0,
                                       bool spatial_masks = true);

// Worst-case bytes of one PER-WORKER arena slice for the cross-group
// parallel regime (cache == nullptr): the group scratch above plus the
// weight panel the worker packs into its slice (the larger of the f32
// panel and the int8 panel+wsum+scale when `int8_regime`). Monotone in gs.
size_t conv_group_masked_slice_bytes(const ConvGeom& g, int out_c, int gs,
                                     bool int8_regime = false,
                                     int64_t tile = 0,
                                     bool spatial_masks = true);

// Option-A residual shortcut kernel: spatial subsampling by `stride` with
// zero-padded extra channels (out_c >= in_c). Zero-fills y, then copies
// the subsampled grid. Shared by models::shortcut_option_a and the
// InferencePlan executor so both produce identical values.
void shortcut_subsample_into(const float* x, int n, int in_c, int h, int w,
                             int out_c, int stride, float* y);

}  // namespace antidote::nn
