// Per-sample convolution kernels shared by the Conv2d module and the
// InferencePlan executor.
//
// Both callers must produce bit-identical results for the same input, so
// the dense im2col+GEMM lowering and the masked (channel / spatial /
// filter skipping) execution live here exactly once. The functions are
// sample-granular: callers own the batch loop, output placement and any
// fused epilogue; the kernels own the arithmetic and draw every scratch
// buffer from the caller's Workspace between a mark/rewind pair the
// *caller* brackets.
//
// The matching *_scratch_bytes functions report the worst-case arena
// high-water of one call, mirroring the allocation sequence (including
// the packed-GEMM panels) byte for byte so the plan compiler can size an
// arena before the first pass ever runs.
#pragma once

#include <span>

#include "nn/conv2d.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace antidote::nn {

// Identity index sets used when a mask component is empty (= keep all).
// Built once per batch by the caller (iota over the arena).
struct ConvIdentityIndices {
  const int* channels = nullptr;   // [g.in_c]
  const int* out = nullptr;        // [out_c]
  const int* positions = nullptr;  // [g.out_positions()]
};

// Dense sample: yb[out_c, out_positions] = W * im2col(xb). `cols` is
// caller-provided scratch of g.patch_rows() * g.out_positions() floats
// (hoisted out of the batch loop). Applies `bias` (nullable) over every
// output position. Returns the MACs executed.
int64_t conv_sample_dense(const float* xb, const ConvGeom& g, const float* w,
                          int out_c, const float* bias, float* cols, float* yb,
                          Workspace& ws);

// Masked sample: executes only the kept channels/positions/filters of `m`
// and scatters into yb, which the caller must have zero-filled. Applies
// `bias` (nullable) to the kept output channels over every position,
// matching the dense path's semantics for the skipped entries (they stay
// zero pre-bias). Returns the MACs executed.
int64_t conv_sample_masked(const float* xb, const ConvGeom& g, const float* w,
                           int out_c, const float* bias,
                           const ConvRuntimeMask& m,
                           const ConvIdentityIndices& ids, float* yb,
                           Workspace& ws);

// Worst-case arena bytes of one conv_sample_dense call (scratch only; the
// caller-hoisted `cols` buffer is reported separately by the plan
// compiler).
size_t conv_sample_dense_scratch_bytes(const ConvGeom& g, int out_c);

// Worst-case arena bytes of one conv_sample_masked call, maximized over
// every mask shape the geometry admits (full index sets; the spatial
// shift-GEMM path only when the conv preserves the grid).
size_t conv_sample_masked_scratch_bytes(const ConvGeom& g, int out_c);

// Option-A residual shortcut kernel: spatial subsampling by `stride` with
// zero-padded extra channels (out_c >= in_c). Zero-fills y, then copies
// the subsampled grid. Shared by models::shortcut_option_a and the
// InferencePlan executor so both produce identical values.
void shortcut_subsample_into(const float* x, int n, int in_c, int h, int w,
                             int out_c, int stride, float* y);

}  // namespace antidote::nn
