// Spatial pooling layers for NCHW tensors.
#pragma once

#include <vector>

#include "nn/module.h"

namespace antidote::nn {

// Shared eval-mode max-pool kernel (no argmax bookkeeping): pools the
// NCHW input into y, which must hold the pooled output. Used by the
// MaxPool2d context overload and the InferencePlan executor so both run
// the exact same arithmetic.
void max_pool_forward_into(const float* x, int n, int c, int h, int w, int k,
                           int stride, float* y);

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int kernel_size, int stride = -1);

  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "MaxPool2d"; }

  int kernel_size() const { return k_; }
  int stride() const { return stride_; }

 private:
  int k_, stride_;
  std::vector<int64_t> argmax_;  // flat input index of each output element
  Shape in_shape_;
};

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(int kernel_size, int stride = -1);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "AvgPool2d"; }

 private:
  int k_, stride_;
  Shape in_shape_;
};

// [N, C, H, W] -> [N, C]; the SENet-style squeeze used for the classifier
// head and (conceptually) for channel attention.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "GlobalAvgPool"; }

 private:
  Shape in_shape_;
};

}  // namespace antidote::nn
