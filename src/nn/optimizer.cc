#include "nn/optimizer.h"

#include "base/error.h"

namespace antidote::nn {

Sgd::Sgd(std::vector<Parameter*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    AD_CHECK(p != nullptr);
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  const float lr = static_cast<float>(options_.lr);
  const float mu = static_cast<float>(options_.momentum);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    const float wd =
        p.decay ? static_cast<float>(options_.weight_decay) : 0.f;
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* v = velocity_[i].data();
    const int64_t n = p.value.size();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      v[j] = mu * v[j] + grad;
      const float update = options_.nesterov ? grad + mu * v[j] : v[j];
      w[j] -= lr * update;
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->grad.zero();
}

}  // namespace antidote::nn
