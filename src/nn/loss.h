// Softmax cross-entropy loss with fused, numerically stable gradient.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace antidote::nn {

class SoftmaxCrossEntropy {
 public:
  // Mean cross-entropy over the batch. logits: [N, K]; labels in [0, K).
  double forward(const Tensor& logits, std::span<const int> labels);

  // dLoss/dLogits for the last forward: (softmax - onehot) / N.
  Tensor backward() const;

  // Softmax probabilities from the last forward (shape [N, K]).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace antidote::nn
