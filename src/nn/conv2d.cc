#include "nn/conv2d.h"

#include <numeric>

#include "base/error.h"
#include "tensor/gemm.h"

namespace antidote::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_size, int stride,
               int padding, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel_size),
      stride_(stride),
      pad_(padding),
      has_bias_(bias),
      weight_("weight", Tensor({out_channels, in_channels, kernel_size,
                                kernel_size})),
      bias_("bias", Tensor({out_channels}), /*weight_decay=*/false) {
  AD_CHECK_GT(in_channels, 0);
  AD_CHECK_GT(out_channels, 0);
  AD_CHECK_GT(kernel_size, 0);
  AD_CHECK_GT(stride, 0);
  AD_CHECK_GE(padding, 0);
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

int64_t Conv2d::dense_macs_per_sample(int in_h, int in_w) const {
  ConvGeom g{in_c_, in_h, in_w, k_, k_, stride_, pad_};
  return static_cast<int64_t>(out_c_) * g.out_positions() * g.patch_rows();
}

void Conv2d::set_runtime_masks(std::vector<ConvRuntimeMask> masks) {
  for (const auto& m : masks) {
    for (int c : m.channels) {
      AD_CHECK(c >= 0 && c < in_c_) << " runtime mask channel " << c;
    }
    for (int c : m.out_channels) {
      AD_CHECK(c >= 0 && c < out_c_) << " runtime mask out channel " << c;
    }
    AD_CHECK(std::is_sorted(m.channels.begin(), m.channels.end()));
    AD_CHECK(std::is_sorted(m.positions.begin(), m.positions.end()));
    AD_CHECK(std::is_sorted(m.out_channels.begin(), m.out_channels.end()));
  }
  pending_masks_ = std::move(masks);
}

Tensor Conv2d::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4) << " Conv2d expects NCHW, got " << x.shape_str();
  AD_CHECK_EQ(x.dim(1), in_c_) << " Conv2d input channels";
  if (!pending_masks_.empty()) {
    std::vector<ConvRuntimeMask> masks;
    masks.swap(pending_masks_);  // consume: masks apply to this pass only
    AD_CHECK_EQ(static_cast<int>(masks.size()), x.dim(0))
        << " runtime mask count vs batch size";
    last_forward_was_masked_ = true;
    return forward_masked(x, masks);
  }
  last_forward_was_masked_ = false;
  return forward_dense(x);
}

Tensor Conv2d::forward_dense(const Tensor& x) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  ConvGeom g{in_c_, h, w, k_, k_, stride_, pad_};
  g.validate();
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();

  Tensor y({n, out_c_, oh, ow});
  Tensor cols({static_cast<int>(patch), static_cast<int>(pos)});
  const float* wp = weight_.value.data();

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<int64_t>(b) * in_c_ * h * w;
    float* yb = y.data() + static_cast<int64_t>(b) * out_c_ * pos;
    im2col(xb, g, cols.data());
    gemm_nn(out_c_, static_cast<int>(pos), static_cast<int>(patch), 1.f, wp,
            cols.data(), 0.f, yb);
    if (has_bias_) {
      const float* bp = bias_.value.data();
      for (int oc = 0; oc < out_c_; ++oc) {
        float* row = yb + static_cast<int64_t>(oc) * pos;
        for (int64_t j = 0; j < pos; ++j) row[j] += bp[oc];
      }
    }
  }
  last_macs_ = static_cast<int64_t>(n) * out_c_ * pos * patch;
  cached_input_ = x;
  return y;
}

Tensor Conv2d::forward_masked(const Tensor& x,
                              const std::vector<ConvRuntimeMask>& masks) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  ConvGeom g{in_c_, h, w, k_, k_, stride_, pad_};
  g.validate();
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t pos = g.out_positions();

  Tensor y({n, out_c_, oh, ow});
  last_macs_ = 0;

  // Identity index sets reused when a mask third is empty (= keep all).
  std::vector<int> all_channels(static_cast<size_t>(in_c_));
  std::iota(all_channels.begin(), all_channels.end(), 0);
  std::vector<int> all_out(static_cast<size_t>(out_c_));
  std::iota(all_out.begin(), all_out.end(), 0);

  Tensor cols;       // gathered patch matrix, re-sized per sample
  Tensor w_packed;   // gathered weight rows, re-sized per sample
  Tensor y_sub;      // gathered output, re-sized per sample

  for (int b = 0; b < n; ++b) {
    const ConvRuntimeMask& m = masks[static_cast<size_t>(b)];
    const std::vector<int>& ch = m.channels.empty() ? all_channels : m.channels;
    const std::vector<int>& oc_set =
        m.out_channels.empty() ? all_out : m.out_channels;
    const int ck = static_cast<int>(ch.size());
    const int ok = static_cast<int>(oc_set.size());
    const float* xb = x.data() + static_cast<int64_t>(b) * in_c_ * h * w;
    float* yb = y.data() + static_cast<int64_t>(b) * out_c_ * pos;
    const int64_t kk = static_cast<int64_t>(k_) * k_;

    if (m.positions.empty()) {
      // Channel / filter skipping only: gather kept-channel patch rows and
      // kept-filter weight rows into one GEMM.
      const int patch_k = ck * k_ * k_;
      w_packed = Tensor({ok, patch_k});
      for (int oi = 0; oi < ok; ++oi) {
        const float* src =
            weight_.value.data() +
            static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * in_c_ * kk;
        float* dst = w_packed.data() + static_cast<int64_t>(oi) * patch_k;
        for (int ci = 0; ci < ck; ++ci) {
          const float* block =
              src + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * kk;
          std::copy(block, block + kk, dst + static_cast<int64_t>(ci) * kk);
        }
      }
      std::vector<int> all_positions(static_cast<size_t>(pos));
      std::iota(all_positions.begin(), all_positions.end(), 0);
      cols = Tensor({patch_k, static_cast<int>(pos)});
      im2col_gather(xb, g, ch, all_positions, cols.data());
      y_sub = Tensor({ok, static_cast<int>(pos)});
      gemm_nn(ok, static_cast<int>(pos), patch_k, 1.f, w_packed.data(),
              cols.data(), 0.f, y_sub.data());
      for (int oi = 0; oi < ok; ++oi) {
        const int oc = oc_set[static_cast<size_t>(oi)];
        std::copy(y_sub.data() + static_cast<int64_t>(oi) * pos,
                  y_sub.data() + static_cast<int64_t>(oi + 1) * pos,
                  yb + static_cast<int64_t>(oc) * pos);
      }
      last_macs_ += static_cast<int64_t>(ok) * pos * patch_k;
    } else {
      // Spatial (column) skipping: input-stationary "shift-GEMM". Only the
      // kept input columns contribute; for each kernel offset (ky, kx) one
      // [ok x ck] x [ck x pk] GEMM produces their contribution, which is
      // scatter-added at the offset output position. The result equals the
      // dense convolution over the column-masked input *exactly* (pruned
      // columns are zero and contribute nothing), while executing only
      // ok * pk * ck * k^2 MACs — dense x keep ratios. This avoids any
      // train/test mismatch: targeted dropout during TTD training computes
      // the same function densely.
      AD_CHECK(stride_ == 1 && oh == h && ow == w)
          << " spatial runtime mask requires a grid-preserving Conv2d";
      AD_CHECK_LE(m.positions.back(), static_cast<int>(pos) - 1);
      const int pk = static_cast<int>(m.positions.size());

      // Gather kept input values: B[ci][j] = x[ch[ci], positions[j]].
      cols = Tensor({ck, pk});
      for (int ci = 0; ci < ck; ++ci) {
        const float* plane =
            xb + static_cast<int64_t>(ch[static_cast<size_t>(ci)]) * h * w;
        float* row = cols.data() + static_cast<int64_t>(ci) * pk;
        for (int j = 0; j < pk; ++j) {
          row[j] = plane[m.positions[static_cast<size_t>(j)]];
        }
      }

      w_packed = Tensor({ok, ck});
      y_sub = Tensor({ok, pk});
      for (int ky = 0; ky < k_; ++ky) {
        for (int kx = 0; kx < k_; ++kx) {
          // W_k[oi][ci] = weight[oc_set[oi], ch[ci], ky, kx].
          for (int oi = 0; oi < ok; ++oi) {
            const float* src =
                weight_.value.data() +
                (static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) *
                     in_c_) *
                    kk +
                static_cast<int64_t>(ky) * k_ + kx;
            float* dst = w_packed.data() + static_cast<int64_t>(oi) * ck;
            for (int ci = 0; ci < ck; ++ci) {
              dst[ci] = src[static_cast<int64_t>(ch[static_cast<size_t>(ci)]) *
                            kk];
            }
          }
          gemm_nn(ok, pk, ck, 1.f, w_packed.data(), cols.data(), 0.f,
                  y_sub.data());
          // Input column (iy, ix) feeds output (iy + pad - ky, ix + pad - kx).
          const int dy = pad_ - ky, dx = pad_ - kx;
          for (int j = 0; j < pk; ++j) {
            const int p = m.positions[static_cast<size_t>(j)];
            const int oy = p / w + dy;
            const int ox = p % w + dx;
            if (oy < 0 || oy >= oh || ox < 0 || ox >= ow) continue;
            const int64_t out_idx = static_cast<int64_t>(oy) * ow + ox;
            for (int oi = 0; oi < ok; ++oi) {
              yb[static_cast<int64_t>(oc_set[static_cast<size_t>(oi)]) * pos +
                 out_idx] += y_sub.data()[static_cast<int64_t>(oi) * pk + j];
            }
          }
        }
      }
      last_macs_ += static_cast<int64_t>(ok) * pk * ck * kk;
    }

    if (has_bias_) {
      const float* bp = bias_.value.data();
      for (int oi = 0; oi < ok; ++oi) {
        const int oc = oc_set[static_cast<size_t>(oi)];
        float* drow = yb + static_cast<int64_t>(oc) * pos;
        const float bias_v = bp[oc];
        for (int64_t j = 0; j < pos; ++j) drow[j] += bias_v;
      }
    }
  }
  cached_input_ = Tensor();  // backward unsupported after masked forward
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  AD_CHECK(!last_forward_was_masked_)
      << " backward through a masked Conv2d forward is not supported";
  AD_CHECK(!cached_input_.empty()) << " Conv2d backward before forward";
  const Tensor& x = cached_input_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  ConvGeom g{in_c_, h, w, k_, k_, stride_, pad_};
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  AD_CHECK_EQ(grad_out.dim(0), n);
  AD_CHECK_EQ(grad_out.dim(1), out_c_);
  AD_CHECK_EQ(static_cast<int64_t>(grad_out.dim(2)) * grad_out.dim(3), pos);

  Tensor dx({n, in_c_, h, w});
  Tensor cols({static_cast<int>(patch), static_cast<int>(pos)});
  Tensor dcols({static_cast<int>(patch), static_cast<int>(pos)});
  float* dwp = weight_.grad.data();
  const float* wp = weight_.value.data();

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<int64_t>(b) * in_c_ * h * w;
    const float* dyb = grad_out.data() + static_cast<int64_t>(b) * out_c_ * pos;
    float* dxb = dx.data() + static_cast<int64_t>(b) * in_c_ * h * w;

    // dW += dY * cols^T
    im2col(xb, g, cols.data());
    gemm_nt(out_c_, static_cast<int>(patch), static_cast<int>(pos), 1.f, dyb,
            cols.data(), 1.f, dwp);

    // dCols = W^T * dY ; dX = col2im(dCols)
    gemm_tn(static_cast<int>(patch), static_cast<int>(pos), out_c_, 1.f, wp,
            dyb, 0.f, dcols.data());
    col2im(dcols.data(), g, dxb);
  }

  if (has_bias_) {
    float* dbp = bias_.grad.data();
    for (int b = 0; b < n; ++b) {
      const float* dyb =
          grad_out.data() + static_cast<int64_t>(b) * out_c_ * pos;
      for (int oc = 0; oc < out_c_; ++oc) {
        const float* row = dyb + static_cast<int64_t>(oc) * pos;
        double acc = 0.0;
        for (int64_t j = 0; j < pos; ++j) acc += row[j];
        dbp[oc] += static_cast<float>(acc);
      }
    }
  }
  return dx;
}

}  // namespace antidote::nn
