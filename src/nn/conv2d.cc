#include "nn/conv2d.h"

#include <cstring>
#include <numeric>

#include "base/error.h"
#include "nn/conv_kernels.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace antidote::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_size, int stride,
               int padding, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel_size),
      stride_(stride),
      pad_(padding),
      has_bias_(bias),
      weight_("weight", Tensor({out_channels, in_channels, kernel_size,
                                kernel_size})),
      bias_("bias", Tensor({out_channels}), /*weight_decay=*/false) {
  AD_CHECK_GT(in_channels, 0);
  AD_CHECK_GT(out_channels, 0);
  AD_CHECK_GT(kernel_size, 0);
  AD_CHECK_GT(stride, 0);
  AD_CHECK_GE(padding, 0);
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

int64_t Conv2d::dense_macs_per_sample(int in_h, int in_w) const {
  ConvGeom g{in_c_, in_h, in_w, k_, k_, stride_, pad_};
  return static_cast<int64_t>(out_c_) * g.out_positions() * g.patch_rows();
}

void Conv2d::check_masks(std::span<const ConvRuntimeMask> masks) const {
  for (const auto& m : masks) {
    for (int c : m.channels) {
      AD_CHECK(c >= 0 && c < in_c_) << " runtime mask channel " << c;
    }
    for (int c : m.out_channels) {
      AD_CHECK(c >= 0 && c < out_c_) << " runtime mask out channel " << c;
    }
    AD_CHECK(std::is_sorted(m.channels.begin(), m.channels.end()));
    AD_CHECK(std::is_sorted(m.positions.begin(), m.positions.end()));
    AD_CHECK(std::is_sorted(m.out_channels.begin(), m.out_channels.end()));
  }
}

void Conv2d::set_runtime_masks(std::vector<ConvRuntimeMask> masks) {
  check_masks(masks);
  pending_masks_ = std::move(masks);
  masks_pending_ = !pending_masks_.empty();
}

void Conv2d::set_runtime_masks(std::span<const ConvRuntimeMask> masks) {
  check_masks(masks);
  // Element-wise copy-assign into the warm storage left behind by earlier
  // passes (not vector::assign, whose capacity reuse for the elements'
  // inner vectors is an implementation detail): each index vector keeps
  // its capacity, so a steady-shape serving loop stops allocating here
  // after the first few passes.
  const size_t keep = std::min(pending_masks_.size(), masks.size());
  for (size_t i = 0; i < keep; ++i) pending_masks_[i] = masks[i];
  if (masks.size() > keep) {
    pending_masks_.insert(pending_masks_.end(), masks.begin() + keep,
                          masks.end());
  } else {
    pending_masks_.resize(masks.size());
  }
  masks_pending_ = !pending_masks_.empty();
}

std::span<const ConvRuntimeMask> Conv2d::take_runtime_masks() {
  if (!masks_pending_) return {};
  // Same swap-through-a-member consumption as forward_impl: both vectors'
  // elements stay alive as warm storage across passes.
  active_masks_.swap(pending_masks_);
  masks_pending_ = false;
  return std::span<const ConvRuntimeMask>(active_masks_);
}

void Conv2d::note_external_execution(int64_t macs, bool masked) {
  last_macs_ = macs;
  last_forward_was_masked_ = masked;
  cached_input_ = Tensor();
}

Tensor Conv2d::forward(const Tensor& x) { return forward_impl(x, nullptr); }

Tensor Conv2d::forward(const Tensor& x, ExecutionContext& ctx) {
  if (is_training()) return forward_impl(x, nullptr);
  return forward_impl(x, &ctx);
}

Tensor Conv2d::forward_impl(const Tensor& x, ExecutionContext* ctx) {
  AD_CHECK_EQ(x.ndim(), 4) << " Conv2d expects NCHW, got " << x.shape_str();
  AD_CHECK_EQ(x.dim(1), in_c_) << " Conv2d input channels";
  if (masks_pending_) {
    // Consume: masks apply to this pass only. Swapping through a member
    // (instead of a local, and without clear()ing either side) keeps both
    // vectors' elements alive as warm storage across passes.
    active_masks_.swap(pending_masks_);
    masks_pending_ = false;
    AD_CHECK_EQ(static_cast<int>(active_masks_.size()), x.dim(0))
        << " runtime mask count vs batch size";
    last_forward_was_masked_ = true;
    return forward_masked(x, active_masks_, ctx);
  }
  last_forward_was_masked_ = false;
  return forward_dense(x, ctx);
}

Tensor Conv2d::forward_dense(const Tensor& x, ExecutionContext* ctx) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  ConvGeom g{in_c_, h, w, k_, k_, stride_, pad_};
  g.validate();
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();

  Workspace& ws = ctx != nullptr ? ctx->workspace() : thread_local_workspace();
  Tensor y = ctx != nullptr ? ctx->alloc({n, out_c_, oh, ow})
                            : Tensor({n, out_c_, oh, ow});
  const Workspace::Mark scratch = ws.mark();
  float* cols = ws.alloc_floats(patch * pos);
  const float* wp = weight_.value.data();
  const float* bp = has_bias_ ? bias_.value.data() : nullptr;

  last_macs_ = 0;
  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<int64_t>(b) * in_c_ * h * w;
    float* yb = y.data() + static_cast<int64_t>(b) * out_c_ * pos;
    last_macs_ += conv_sample_dense(xb, g, wp, out_c_, bp, cols, yb, ws);
  }
  ws.rewind(scratch);
  // Context forwards are inference-only: skip the backward cache so arena
  // tensors never outlive their pass.
  cached_input_ = ctx != nullptr ? Tensor() : x;
  return y;
}

Tensor Conv2d::forward_masked(const Tensor& x,
                              const std::vector<ConvRuntimeMask>& masks,
                              ExecutionContext* ctx) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  ConvGeom g{in_c_, h, w, k_, k_, stride_, pad_};
  g.validate();
  const int oh = g.out_h(), ow = g.out_w();
  const int64_t pos = g.out_positions();

  Workspace& ws = ctx != nullptr ? ctx->workspace() : thread_local_workspace();
  Tensor y = ctx != nullptr ? ctx->alloc({n, out_c_, oh, ow})
                            : Tensor({n, out_c_, oh, ow});
  if (ctx != nullptr) {
    // Arena memory is uninitialized; pruned positions must stay zero.
    std::memset(y.data(), 0, static_cast<size_t>(y.size()) * sizeof(float));
  }
  last_macs_ = 0;

  const Workspace::Mark outer = ws.mark();
  // Identity index sets reused when a mask third is empty (= keep all).
  int* all_channels = ws.alloc<int>(in_c_);
  std::iota(all_channels, all_channels + in_c_, 0);
  int* all_out = ws.alloc<int>(out_c_);
  std::iota(all_out, all_out + out_c_, 0);
  int* all_positions = ws.alloc<int>(pos);
  std::iota(all_positions, all_positions + pos, 0);
  const ConvIdentityIndices ids{all_channels, all_out, all_positions};
  const float* wp = weight_.value.data();
  const float* bp = has_bias_ ? bias_.value.data() : nullptr;

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<int64_t>(b) * in_c_ * h * w;
    float* yb = y.data() + static_cast<int64_t>(b) * out_c_ * pos;
    last_macs_ += conv_sample_masked(xb, g, wp, out_c_, bp,
                                     masks[static_cast<size_t>(b)], ids, yb,
                                     ws);
  }
  ws.rewind(outer);
  cached_input_ = Tensor();  // backward unsupported after masked forward
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  AD_CHECK(!last_forward_was_masked_)
      << " backward through a masked Conv2d forward is not supported";
  AD_CHECK(!cached_input_.empty()) << " Conv2d backward before forward";
  const Tensor& x = cached_input_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  ConvGeom g{in_c_, h, w, k_, k_, stride_, pad_};
  const int64_t patch = g.patch_rows();
  const int64_t pos = g.out_positions();
  AD_CHECK_EQ(grad_out.dim(0), n);
  AD_CHECK_EQ(grad_out.dim(1), out_c_);
  AD_CHECK_EQ(static_cast<int64_t>(grad_out.dim(2)) * grad_out.dim(3), pos);

  Tensor dx({n, in_c_, h, w});
  Tensor cols({static_cast<int>(patch), static_cast<int>(pos)});
  Tensor dcols({static_cast<int>(patch), static_cast<int>(pos)});
  float* dwp = weight_.grad.data();
  const float* wp = weight_.value.data();

  for (int b = 0; b < n; ++b) {
    const float* xb = x.data() + static_cast<int64_t>(b) * in_c_ * h * w;
    const float* dyb = grad_out.data() + static_cast<int64_t>(b) * out_c_ * pos;
    float* dxb = dx.data() + static_cast<int64_t>(b) * in_c_ * h * w;

    // dW += dY * cols^T
    im2col(xb, g, cols.data());
    gemm_nt(out_c_, static_cast<int>(patch), static_cast<int>(pos), 1.f, dyb,
            cols.data(), 1.f, dwp);

    // dCols = W^T * dY ; dX = col2im(dCols)
    gemm_tn(static_cast<int>(patch), static_cast<int>(pos), out_c_, 1.f, wp,
            dyb, 0.f, dcols.data());
    col2im(dcols.data(), g, dxb);
  }

  if (has_bias_) {
    float* dbp = bias_.grad.data();
    for (int b = 0; b < n; ++b) {
      const float* dyb =
          grad_out.data() + static_cast<int64_t>(b) * out_c_ * pos;
      for (int oc = 0; oc < out_c_; ++oc) {
        const float* row = dyb + static_cast<int64_t>(oc) * pos;
        double acc = 0.0;
        for (int64_t j = 0; j < pos; ++j) acc += row[j];
        dbp[oc] += static_cast<float>(acc);
      }
    }
  }
  return dx;
}

}  // namespace antidote::nn
