// Layer/module abstraction for the training-capable CNN substrate.
//
// Modules implement an explicit forward/backward pair (no tape autograd —
// the CNN graphs in this project are feed-forward chains plus residual
// blocks, which the model classes wire manually). `forward` caches whatever
// it needs for the matching `backward`; calling backward without a prior
// forward is an error.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/execution_context.h"
#include "tensor/tensor.h"

namespace antidote::nn {

// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;   // local name within the owning module, e.g. "weight"
  Tensor value;
  Tensor grad;        // same shape as value; accumulated by backward()
  bool decay = true;  // include in weight decay (biases/BN params opt out)

  Parameter() = default;
  Parameter(std::string n, Tensor v, bool weight_decay = true)
      : name(std::move(n)), value(std::move(v)), decay(weight_decay) {
    grad = Tensor(value.shape());
  }
};

// Visitor over persistent state (parameter values and buffers such as
// BatchNorm running statistics) used for checkpoint save/load.
using StateVisitor = std::function<void(const std::string& name, Tensor& t)>;

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Computes the layer output; caches activations needed by backward().
  virtual Tensor forward(const Tensor& x) = 0;

  // Context-carrying overload used by the inference hot path: layers that
  // override it draw scratch AND output storage from the context's
  // workspace arena (zero heap allocations once the arena is warm) and
  // skip the activation caching backward() would need. The base default
  // falls back to the plain overload, so layers without an optimized path
  // stay correct. Contract: inference only (overrides delegate to the
  // plain path while training); returned tensors are invalidated by the
  // context's next begin_pass().
  virtual Tensor forward(const Tensor& x, ExecutionContext& ctx) {
    (void)ctx;
    return forward(x);
  }

  // Given dLoss/dOutput, accumulates parameter gradients and returns
  // dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Learnable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  // Visits persistent state under `prefix` (default: parameters only).
  virtual void visit_state(const std::string& prefix, const StateVisitor& fn);

  // Switches train/eval behaviour (BatchNorm statistics, dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool is_training() const { return training_; }

  // Human-readable layer type for diagnostics and the FLOPs report.
  virtual std::string type_name() const = 0;

  // Multiply-accumulate count of the most recent forward() call. Layers
  // without arithmetic report 0. Dynamic (masked) convolutions report the
  // actually executed MACs, which is how the harness measures FLOPs
  // reduction.
  virtual int64_t last_macs() const { return 0; }

  // Zeroes all parameter gradients.
  void zero_grad();

 protected:
  bool training_ = true;
};

// Interface for feature-map gates (implemented by AntiDote's attention
// gate). A disabled gate behaves as the identity, which lets tooling such
// as the FLOPs prober measure the dense baseline of a gated model without
// tearing the gates down.
class Gate : public Module {
 public:
  virtual void set_enabled(bool enabled) = 0;
  virtual bool enabled() const = 0;
};

// Feed-forward container executing children in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  // Appends a child and returns a non-owning typed pointer to it.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto child = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = child.get();
    children_.push_back(std::move(child));
    return raw;
  }
  void add_module(std::unique_ptr<Module> m) {
    children_.push_back(std::move(m));
  }

  Tensor forward(const Tensor& x) override;
  Tensor forward(const Tensor& x, ExecutionContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  void visit_state(const std::string& prefix, const StateVisitor& fn) override;
  void set_training(bool training) override;
  std::string type_name() const override { return "Sequential"; }
  int64_t last_macs() const override;

  size_t size() const { return children_.size(); }
  Module* child(size_t i) { return children_.at(i).get(); }
  const Module* child(size_t i) const { return children_.at(i).get(); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

// Total number of scalar weights across a module's parameters.
int64_t parameter_count(Module& m);

}  // namespace antidote::nn
