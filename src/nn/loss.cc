#include "nn/loss.h"

#include <cmath>

#include "base/error.h"
#include "tensor/ops.h"

namespace antidote::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    std::span<const int> labels) {
  AD_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), k = logits.dim(1);
  AD_CHECK_EQ(static_cast<int>(labels.size()), n);
  probs_ = ops::softmax_rows(logits);
  labels_.assign(labels.begin(), labels.end());
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels_[static_cast<size_t>(i)];
    AD_CHECK(y >= 0 && y < k) << " label " << y << " out of range " << k;
    const float p = probs_.at({i, y});
    loss += -std::log(std::max(p, 1e-12f));
  }
  return loss / n;
}

Tensor SoftmaxCrossEntropy::backward() const {
  AD_CHECK(!probs_.empty()) << " loss backward before forward";
  const int n = probs_.dim(0);
  Tensor grad = probs_.clone();
  const float inv_n = 1.f / static_cast<float>(n);
  float* p = grad.data();
  const int k = probs_.dim(1);
  for (int i = 0; i < n; ++i) {
    p[static_cast<int64_t>(i) * k + labels_[static_cast<size_t>(i)]] -= 1.f;
  }
  for (int64_t i = 0; i < grad.size(); ++i) p[i] *= inv_n;
  return grad;
}

}  // namespace antidote::nn
