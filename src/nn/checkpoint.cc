#include "nn/checkpoint.h"

#include <map>

#include "base/error.h"
#include "base/io.h"

namespace antidote::nn {

namespace {
constexpr uint32_t kMagic = 0xAD07C4EC;
constexpr uint32_t kVersion = 1;
}  // namespace

void save_checkpoint(Module& m, const std::string& path) {
  // Collect first so the count can be written up front.
  std::vector<std::pair<std::string, Tensor*>> entries;
  m.visit_state("", [&](const std::string& name, Tensor& t) {
    entries.emplace_back(name, &t);
  });
  BinaryWriter out(path);
  out.write_u32(kMagic);
  out.write_u32(kVersion);
  out.write_u64(entries.size());
  for (auto& [name, tensor] : entries) {
    out.write_string(name);
    out.write_u32(static_cast<uint32_t>(tensor->ndim()));
    for (int i = 0; i < tensor->ndim(); ++i) {
      out.write_i32(tensor->dim(i));
    }
    out.write_floats(tensor->data(), static_cast<size_t>(tensor->size()));
  }
  out.close();
}

void load_checkpoint(Module& m, const std::string& path) {
  BinaryReader in(path);
  AD_CHECK_EQ(in.read_u32(), kMagic) << " not an AntiDote checkpoint: " << path;
  AD_CHECK_EQ(in.read_u32(), kVersion) << " unsupported checkpoint version";
  const uint64_t count = in.read_u64();

  std::map<std::string, Tensor> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = in.read_string();
    const uint32_t ndim = in.read_u32();
    AD_CHECK_LE(ndim, 8u) << " implausible tensor rank in " << path;
    std::vector<int> shape(ndim);
    for (uint32_t d = 0; d < ndim; ++d) shape[d] = in.read_i32();
    Tensor t(shape);
    in.read_floats(t.data(), static_cast<size_t>(t.size()));
    AD_CHECK(loaded.emplace(name, std::move(t)).second)
        << " duplicate tensor name " << name << " in " << path;
  }

  size_t used = 0;
  m.visit_state("", [&](const std::string& name, Tensor& t) {
    auto it = loaded.find(name);
    AD_CHECK(it != loaded.end()) << " checkpoint missing tensor " << name;
    AD_CHECK(it->second.same_shape(t))
        << " shape mismatch for " << name << ": file "
        << it->second.shape_str() << " vs model " << t.shape_str();
    t.copy_from(it->second);
    ++used;
  });
  AD_CHECK_EQ(used, loaded.size())
      << " checkpoint has tensors the model does not (wrong architecture?)";
}

std::map<std::string, Tensor> snapshot_state(Module& m) {
  std::map<std::string, Tensor> out;
  m.visit_state("", [&](const std::string& name, Tensor& t) {
    AD_CHECK(out.emplace(name, t.clone()).second)
        << " duplicate state name " << name;
  });
  return out;
}

void restore_state(Module& m, const std::map<std::string, Tensor>& snapshot) {
  size_t used = 0;
  m.visit_state("", [&](const std::string& name, Tensor& t) {
    auto it = snapshot.find(name);
    AD_CHECK(it != snapshot.end()) << " snapshot missing tensor " << name;
    t.copy_from(it->second);
    ++used;
  });
  AD_CHECK_EQ(used, snapshot.size()) << " snapshot/model structure mismatch";
}

}  // namespace antidote::nn
