#include "nn/module.h"

#include "base/error.h"

namespace antidote::nn {

void Module::visit_state(const std::string& prefix, const StateVisitor& fn) {
  for (Parameter* p : parameters()) {
    fn(prefix + p->name, p->value);
  }
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& child : children_) cur = child->forward(cur);
  return cur;
}

Tensor Sequential::forward(const Tensor& x, ExecutionContext& ctx) {
  Tensor cur = x;
  for (auto& child : children_) cur = child->forward(cur, ctx);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& child : children_) {
    for (Parameter* p : child->parameters()) out.push_back(p);
  }
  return out;
}

void Sequential::visit_state(const std::string& prefix,
                             const StateVisitor& fn) {
  for (size_t i = 0; i < children_.size(); ++i) {
    children_[i]->visit_state(prefix + std::to_string(i) + ".", fn);
  }
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

int64_t Sequential::last_macs() const {
  int64_t total = 0;
  for (const auto& child : children_) total += child->last_macs();
  return total;
}

int64_t parameter_count(Module& m) {
  int64_t total = 0;
  for (Parameter* p : m.parameters()) total += p->value.size();
  return total;
}

}  // namespace antidote::nn
