// Static filter-importance criteria — the Table-I baselines.
//
//  - kL1 / kL2 (Li et al. [8]): norm of each filter's weights.
//  - kTaylor (Molchanov et al. [19]): mean |activation x gradient| per
//    output channel, estimated over a calibration set.
//  - kGeometricMedian (He et al. [20]): a filter's summed distance to all
//    other filters in the layer; filters closest to the geometric median
//    (smallest total distance) are the most replaceable and are pruned
//    first.
//  - kActivation (our stand-in for Functionality-Oriented pruning [21]):
//    mean |activation| per output channel over the calibration set —
//    filters whose outputs barely activate contribute least function.
//  - kRandom: control.
// Higher score = more important = kept longer.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/conv2d.h"

namespace antidote::baselines {

enum class StaticCriterion {
  kL1,
  kL2,
  kTaylor,
  kGeometricMedian,
  kActivation,
  kRandom,
};

const char* criterion_name(StaticCriterion criterion);

// Weight-only scores (kL1 / kL2 / kGeometricMedian / kRandom); one score
// per output filter of `conv`.
std::vector<float> weight_filter_scores(const nn::Conv2d& conv,
                                        StaticCriterion criterion, Rng& rng);

// True if the criterion needs activation/gradient statistics from a
// calibration pass (kTaylor, kActivation).
bool criterion_needs_data(StaticCriterion criterion);

}  // namespace antidote::baselines
