#include "baselines/static_pruner.h"

#include <algorithm>
#include <map>

#include "baselines/stats_gate.h"
#include "base/error.h"
#include "core/mask.h"
#include "data/dataloader.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace antidote::baselines {

StaticPruner::StaticPruner(models::ConvNet& net, StaticPruneConfig config)
    : net_(&net), config_(std::move(config)), rng_(config_.seed) {
  AD_CHECK_EQ(static_cast<int>(config_.drop_per_block.size()),
              net.num_blocks())
      << " drop_per_block entries vs model blocks";
  for (float d : config_.drop_per_block) {
    AD_CHECK(d >= 0.f && d <= 1.f) << " drop ratio " << d;
  }
}

std::vector<std::vector<float>> StaticPruner::compute_scores(
    const data::Dataset& calibration) {
  const int sites = net_->num_gate_sites();
  std::vector<std::vector<float>> scores(static_cast<size_t>(sites));

  if (!criterion_needs_data(config_.criterion)) {
    for (int s = 0; s < sites; ++s) {
      scores[static_cast<size_t>(s)] = weight_filter_scores(
          *net_->gate_producer(s), config_.criterion, rng_);
    }
    return scores;
  }

  // Data-driven criteria: probe activations (and gradients for Taylor)
  // through temporarily installed stats gates.
  std::vector<ChannelStatsGate*> gates(static_cast<size_t>(sites));
  for (int s = 0; s < sites; ++s) {
    auto gate = std::make_unique<ChannelStatsGate>(
        net_->gate_producer(s)->out_channels());
    gates[static_cast<size_t>(s)] = gate.get();
    net_->install_gate(s, std::move(gate));
  }

  const bool needs_backward = config_.criterion == StaticCriterion::kTaylor;
  const bool was_training = net_->is_training();
  // Taylor needs gradients -> training-mode backward; activation stats use
  // eval mode so BatchNorm running statistics stay untouched.
  net_->set_training(needs_backward);

  data::DataLoader loader(calibration, config_.calibration_batch_size,
                          /*shuffle=*/true, config_.seed);
  nn::SoftmaxCrossEntropy loss;
  const int batches = std::min(config_.calibration_batches,
                               loader.num_batches());
  AD_CHECK_GT(batches, 0);
  for (int b = 0; b < batches; ++b) {
    data::Batch batch = loader.batch(b);
    const Tensor logits = net_->forward(batch.images);
    if (needs_backward) {
      loss.forward(logits, batch.labels);
      net_->backward(loss.backward());
    }
  }
  if (needs_backward) net_->zero_grad();  // discard calibration gradients

  for (int s = 0; s < sites; ++s) {
    scores[static_cast<size_t>(s)] =
        config_.criterion == StaticCriterion::kTaylor
            ? gates[static_cast<size_t>(s)]->mean_abs_taylor()
            : gates[static_cast<size_t>(s)]->mean_abs_activation();
  }
  net_->clear_gates();
  net_->set_training(was_training);
  return scores;
}

void StaticPruner::prune(const data::Dataset& calibration) {
  AD_CHECK(!pruned()) << " StaticPruner::prune called twice";
  const std::vector<std::vector<float>> scores = compute_scores(calibration);

  const int sites = net_->num_gate_sites();
  kept_.resize(static_cast<size_t>(sites));
  for (int s = 0; s < sites; ++s) {
    const auto& site_scores = scores[static_cast<size_t>(s)];
    const int c = static_cast<int>(site_scores.size());
    const float drop =
        config_.drop_per_block[static_cast<size_t>(net_->block_of_site(s))];
    const int k = core::kept_count(c, drop);
    std::vector<int> kept = ops::topk_indices(site_scores, k);
    std::sort(kept.begin(), kept.end());
    kept_[static_cast<size_t>(s)] = std::move(kept);
  }
  zero_pruned_parameters();
}

void StaticPruner::zero_pruned_parameters() {
  for (int s = 0; s < net_->num_gate_sites(); ++s) {
    nn::Conv2d* conv = net_->gate_producer(s);
    nn::BatchNorm2d* bn = net_->gate_producer_bn(s);
    const std::vector<uint8_t> keep = core::kept_to_mask(
        kept_[static_cast<size_t>(s)], conv->out_channels());
    Tensor& w = conv->weight().value;
    const int64_t filter_size = w.size() / conv->out_channels();
    for (int f = 0; f < conv->out_channels(); ++f) {
      if (keep[static_cast<size_t>(f)]) continue;
      float* row = w.data() + static_cast<int64_t>(f) * filter_size;
      for (int64_t i = 0; i < filter_size; ++i) row[i] = 0.f;
      if (conv->has_bias()) conv->bias().value[f] = 0.f;
      if (bn != nullptr) {
        bn->gamma().value[f] = 0.f;
        bn->beta().value[f] = 0.f;
      }
    }
  }
}

std::vector<core::EpochStats> StaticPruner::finetune(
    const data::Dataset& train, const core::TrainConfig& config) {
  AD_CHECK(pruned()) << " finetune before prune";
  core::TrainConfig cfg = config;
  cfg.post_step = [this] { zero_pruned_parameters(); };
  core::Trainer trainer(*net_, train, cfg);
  return trainer.fit();
}

void StaticPruner::install_runtime_masks(int batch_size) {
  // A conv can be both a producer (skip its pruned filters) and the next
  // site's consumer (skip its pruned input channels); merge per conv.
  std::map<nn::Conv2d*, nn::ConvRuntimeMask> per_conv;
  for (int s = 0; s < net_->num_gate_sites(); ++s) {
    const std::vector<int>& kept = kept_[static_cast<size_t>(s)];
    per_conv[net_->gate_producer(s)].out_channels = kept;
    if (nn::Conv2d* consumer = net_->gate_consumer(s)) {
      per_conv[consumer].channels = kept;
    }
  }
  for (auto& [conv, mask] : per_conv) {
    conv->set_runtime_masks(
        std::vector<nn::ConvRuntimeMask>(static_cast<size_t>(batch_size),
                                         mask));
  }
}

core::EvalResult StaticPruner::evaluate_pruned(const data::Dataset& test,
                                               int batch_size) {
  AD_CHECK(pruned()) << " evaluate_pruned before prune";
  return core::evaluate(*net_, test, batch_size,
                        [this](int n) { install_runtime_masks(n); });
}

}  // namespace antidote::baselines
