// StaticPruner — the classical static filter-pruning pipeline the paper
// compares against (Table I): rank filters by a criterion, permanently
// prune the lowest-ranked fraction per block, finetune.
//
// Execution model: pruning is *permanent and input-independent*. Pruned
// filters have their weights and BatchNorm affine parameters zeroed
// (finetuning keeps them at zero via a projection step), and at evaluation
// time the pruned computation is actually skipped through Conv2d runtime
// masks — the producing conv skips the pruned filters and the consuming
// conv skips the corresponding input channels — so FLOPs are measured the
// same way as for AntiDote's dynamic pruning. The contrast with the
// dynamic method is exactly the paper's: the kept set here is one fixed
// set for the whole dataset, not a per-input set.
#pragma once

#include <vector>

#include "baselines/criteria.h"
#include "core/evaluate.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "models/convnet.h"

namespace antidote::baselines {

struct StaticPruneConfig {
  StaticCriterion criterion = StaticCriterion::kL1;
  // Fraction of filters dropped per model block (same semantics as the
  // dynamic method's per-block channel ratios).
  std::vector<float> drop_per_block;
  // Calibration pass size for data-driven criteria (Taylor, activation).
  int calibration_batches = 4;
  int calibration_batch_size = 32;
  uint64_t seed = 42;
};

class StaticPruner {
 public:
  StaticPruner(models::ConvNet& net, StaticPruneConfig config);

  // Ranks filters (running a calibration pass over `calibration` for
  // data-driven criteria), selects the kept sets and zeroes pruned
  // parameters. Must be called exactly once.
  void prune(const data::Dataset& calibration);

  // Projection finetuning: standard training with pruned parameters pinned
  // to zero after every optimizer step.
  std::vector<core::EpochStats> finetune(const data::Dataset& train,
                                         const core::TrainConfig& config);

  // Evaluation with real computation skipping (see file comment).
  core::EvalResult evaluate_pruned(const data::Dataset& test,
                                   int batch_size = 64);

  const std::vector<std::vector<int>>& kept_per_site() const { return kept_; }
  bool pruned() const { return !kept_.empty(); }

 private:
  std::vector<std::vector<float>> compute_scores(
      const data::Dataset& calibration);
  void zero_pruned_parameters();
  void install_runtime_masks(int batch_size);

  models::ConvNet* net_;
  StaticPruneConfig config_;
  Rng rng_;
  std::vector<std::vector<int>> kept_;  // per site, sorted ascending
};

}  // namespace antidote::baselines
