// FBS-style dynamic channel gate — the learned-saliency alternative the
// paper cites as related work (Gao et al., "Dynamic Channel Pruning:
// Feature Boosting and Suppression", ICLR 2019 [13]).
//
// Where AntiDote's AttentionGate ranks channels by their *activation
// attention* (a parameter-free statistic), FBS learns a tiny per-layer
// saliency predictor: s = relu(W * gap(x) + b), keeps the top-k channels
// by s and multiplies the survivors by their saliency ("boosting"). The
// predictor trains jointly with the network (gradients flow through the
// multiplicative path of kept channels).
//
// Implemented against the same nn::Gate interface so it is drop-in
// comparable with the attention gate in benchmarks: same per-sample mask
// plumbing, same consumer skip instructions, same FLOPs measurement.
#pragma once

#include <vector>

#include "base/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace antidote::baselines {

class FbsGate : public nn::Gate {
 public:
  // `channels` is C of the gated feature map; keeps (1-drop_ratio)*C
  // channels per input. `consumer` as in AttentionGate.
  FbsGate(int channels, float drop_ratio, nn::Conv2d* consumer,
          uint64_t seed = 4242);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  void visit_state(const std::string& prefix,
                   const nn::StateVisitor& fn) override;
  std::string type_name() const override { return "FbsGate"; }

  void set_enabled(bool enabled) override { enabled_ = enabled; }
  bool enabled() const override { return enabled_; }

  int channels() const { return channels_; }
  float drop_ratio() const { return drop_ratio_; }
  void set_drop_ratio(float ratio);
  // Per-sample kept channel sets of the last forward.
  const std::vector<nn::ConvRuntimeMask>& last_masks() const {
    return last_masks_;
  }

 private:
  int channels_;
  float drop_ratio_;
  nn::Conv2d* consumer_;
  bool enabled_ = true;
  nn::Linear saliency_;  // C -> C predictor over the GAP vector
  Rng rng_{0};           // required by select_kept's interface; unused here

  // Caches for backward.
  Tensor cached_input_;
  Tensor cached_scale_;      // per-element multiplicative factor applied
  Tensor cached_saliency_;   // [N, C] post-ReLU saliency
  std::vector<nn::ConvRuntimeMask> last_masks_;
};

}  // namespace antidote::baselines
