// ChannelStatsGate — a pass-through probe installed at gate sites to
// collect the per-channel statistics needed by data-driven pruning
// criteria: mean |activation| (FO/activation criterion) and mean
// |activation x gradient| (Taylor criterion). Forward is the identity;
// backward is the identity but pairs incoming gradients with the cached
// activation to accumulate the Taylor term.
#pragma once

#include <vector>

#include "nn/module.h"

namespace antidote::baselines {

class ChannelStatsGate : public nn::Module {
 public:
  explicit ChannelStatsGate(int channels);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string type_name() const override { return "ChannelStatsGate"; }

  // Mean |activation| per channel across all samples seen so far.
  std::vector<float> mean_abs_activation() const;
  // Mean |activation * gradient| per channel (Taylor first-order term).
  std::vector<float> mean_abs_taylor() const;

  void reset();
  int64_t samples_seen() const { return act_samples_; }

 private:
  int channels_;
  std::vector<double> act_sum_;     // sum over samples of mean |act| per ch
  std::vector<double> taylor_sum_;  // sum over samples of mean |act*grad|
  int64_t act_samples_ = 0;
  int64_t taylor_samples_ = 0;
  Tensor cached_activation_;
};

}  // namespace antidote::baselines
