#include "baselines/stats_gate.h"

#include <cmath>

#include "base/error.h"

namespace antidote::baselines {

ChannelStatsGate::ChannelStatsGate(int channels) : channels_(channels) {
  AD_CHECK_GT(channels, 0);
  reset();
}

void ChannelStatsGate::reset() {
  act_sum_.assign(static_cast<size_t>(channels_), 0.0);
  taylor_sum_.assign(static_cast<size_t>(channels_), 0.0);
  act_samples_ = 0;
  taylor_samples_ = 0;
}

Tensor ChannelStatsGate::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4);
  AD_CHECK_EQ(x.dim(1), channels_);
  const int n = x.dim(0), c = channels_;
  const int64_t hw = static_cast<int64_t>(x.dim(2)) * x.dim(3);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (static_cast<int64_t>(b) * c + ch) * hw;
      double acc = 0.0;
      for (int64_t j = 0; j < hw; ++j) acc += std::abs(plane[j]);
      act_sum_[static_cast<size_t>(ch)] += acc / static_cast<double>(hw);
    }
  }
  act_samples_ += n;
  cached_activation_ = x;
  return x;
}

Tensor ChannelStatsGate::backward(const Tensor& grad_out) {
  AD_CHECK(!cached_activation_.empty())
      << " ChannelStatsGate backward before forward";
  AD_CHECK(grad_out.same_shape(cached_activation_));
  const int n = grad_out.dim(0), c = channels_;
  const int64_t hw = static_cast<int64_t>(grad_out.dim(2)) * grad_out.dim(3);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
      const float* a = cached_activation_.data() + off;
      const float* g = grad_out.data() + off;
      double acc = 0.0;
      for (int64_t j = 0; j < hw; ++j) acc += std::abs(double(a[j]) * g[j]);
      taylor_sum_[static_cast<size_t>(ch)] += acc / static_cast<double>(hw);
    }
  }
  taylor_samples_ += n;
  return grad_out;
}

std::vector<float> ChannelStatsGate::mean_abs_activation() const {
  AD_CHECK_GT(act_samples_, 0) << " no calibration forward passes recorded";
  std::vector<float> out(static_cast<size_t>(channels_));
  for (int ch = 0; ch < channels_; ++ch) {
    out[static_cast<size_t>(ch)] = static_cast<float>(
        act_sum_[static_cast<size_t>(ch)] / static_cast<double>(act_samples_));
  }
  return out;
}

std::vector<float> ChannelStatsGate::mean_abs_taylor() const {
  AD_CHECK_GT(taylor_samples_, 0)
      << " no calibration backward passes recorded";
  std::vector<float> out(static_cast<size_t>(channels_));
  for (int ch = 0; ch < channels_; ++ch) {
    out[static_cast<size_t>(ch)] =
        static_cast<float>(taylor_sum_[static_cast<size_t>(ch)] /
                           static_cast<double>(taylor_samples_));
  }
  return out;
}

}  // namespace antidote::baselines
