#include "baselines/fbs_gate.h"

#include "base/error.h"
#include "core/mask.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace antidote::baselines {

FbsGate::FbsGate(int channels, float drop_ratio, nn::Conv2d* consumer,
                 uint64_t seed)
    : channels_(channels),
      drop_ratio_(drop_ratio),
      consumer_(consumer),
      saliency_(channels, channels) {
  AD_CHECK_GT(channels, 0);
  set_drop_ratio(drop_ratio);
  Rng rng(seed);
  nn::xavier_uniform(saliency_.weight().value, rng);
  // Positive bias so saliencies start active (ReLU would otherwise kill
  // half the gradient signal at initialization).
  saliency_.bias().value.fill(1.f);
}

void FbsGate::set_drop_ratio(float ratio) {
  AD_CHECK(ratio >= 0.f && ratio <= 1.f) << " fbs drop ratio " << ratio;
  drop_ratio_ = ratio;
}

std::vector<nn::Parameter*> FbsGate::parameters() {
  return saliency_.parameters();
}

void FbsGate::visit_state(const std::string& prefix,
                          const nn::StateVisitor& fn) {
  saliency_.visit_state(prefix + "saliency.", fn);
}

Tensor FbsGate::forward(const Tensor& x) {
  AD_CHECK_EQ(x.ndim(), 4) << " FbsGate expects NCHW";
  AD_CHECK_EQ(x.dim(1), channels_);
  if (!enabled_) {
    cached_scale_ = Tensor();
    last_masks_.clear();
    return x;
  }
  const int n = x.dim(0), c = channels_;
  const int64_t hw = static_cast<int64_t>(x.dim(2)) * x.dim(3);

  // Saliency from the squeezed (GAP) descriptor.
  const Tensor gap = ops::channel_mean_nchw(x);
  const Tensor pre = saliency_.forward(gap);
  cached_saliency_ = ops::relu(pre);

  // Winner-take-all: keep top-k saliencies per sample, scale survivors.
  cached_input_ = x;
  cached_scale_ = Tensor(x.shape());
  last_masks_.assign(static_cast<size_t>(n), nn::ConvRuntimeMask{});
  Tensor out(x.shape());
  for (int b = 0; b < n; ++b) {
    std::span<const float> s(
        cached_saliency_.data() + static_cast<int64_t>(b) * c,
        static_cast<size_t>(c));
    std::vector<int> kept =
        core::select_kept(s, drop_ratio_, core::MaskOrder::kAttention, rng_);
    last_masks_[static_cast<size_t>(b)].channels = kept;
    const std::vector<uint8_t> keep = core::kept_to_mask(kept, c);
    for (int ch = 0; ch < c; ++ch) {
      const float scale =
          keep[static_cast<size_t>(ch)] ? s[static_cast<size_t>(ch)] : 0.f;
      const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
      const float* px = x.data() + off;
      float* pscale = cached_scale_.data() + off;
      float* pout = out.data() + off;
      for (int64_t j = 0; j < hw; ++j) {
        pscale[j] = scale;
        pout[j] = px[j] * scale;
      }
    }
  }

  if (!is_training() && consumer_ != nullptr) {
    consumer_->set_runtime_masks(last_masks_);
  }
  return out;
}

Tensor FbsGate::backward(const Tensor& grad_out) {
  if (cached_scale_.empty()) return grad_out;  // was disabled
  AD_CHECK(grad_out.same_shape(cached_scale_));
  const int n = grad_out.dim(0), c = channels_;
  const int64_t hw = static_cast<int64_t>(grad_out.dim(2)) * grad_out.dim(3);

  // Path 1: through the elementwise product with saliency held fixed.
  Tensor dx = ops::mul(grad_out, cached_scale_);

  // Path 2: through the saliency predictor. For a kept channel,
  // d out/d s = x, so ds[b,c] = sum_plane(dy * x); dropped channels get 0
  // (their saliency did not contribute). ReLU gates ds, then the linear
  // layer backpropagates to its parameters and to the GAP descriptor,
  // which spreads uniformly back over the plane.
  Tensor ds({n, c});
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const int64_t off = (static_cast<int64_t>(b) * c + ch) * hw;
      const float* pdy = grad_out.data() + off;
      const float* px = cached_input_.data() + off;
      const float* pscale = cached_scale_.data() + off;
      if (pscale[0] == 0.f && cached_saliency_.at({b, ch}) != 0.f) {
        // Channel was dropped by top-k (not by ReLU): no gradient.
        ds.at({b, ch}) = 0.f;
        continue;
      }
      double acc = 0.0;
      for (int64_t j = 0; j < hw; ++j) acc += double(pdy[j]) * px[j];
      // ReLU gate: zero where the pre-activation saliency was negative.
      ds.at({b, ch}) = cached_saliency_.at({b, ch}) > 0.f
                           ? static_cast<float>(acc)
                           : 0.f;
    }
  }
  const Tensor dgap = saliency_.backward(ds);

  // GAP backward: each plane element receives dgap / (H*W).
  const float inv = 1.f / static_cast<float>(hw);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const float g = dgap.at({b, ch}) * inv;
      float* pdx = dx.data() + (static_cast<int64_t>(b) * c + ch) * hw;
      for (int64_t j = 0; j < hw; ++j) pdx[j] += g;
    }
  }
  return dx;
}

}  // namespace antidote::baselines
