#include "baselines/criteria.h"

#include <cmath>

#include "base/error.h"

namespace antidote::baselines {

const char* criterion_name(StaticCriterion criterion) {
  switch (criterion) {
    case StaticCriterion::kL1:
      return "l1";
    case StaticCriterion::kL2:
      return "l2";
    case StaticCriterion::kTaylor:
      return "taylor";
    case StaticCriterion::kGeometricMedian:
      return "gm";
    case StaticCriterion::kActivation:
      return "fo";
    case StaticCriterion::kRandom:
      return "random";
  }
  return "?";
}

bool criterion_needs_data(StaticCriterion criterion) {
  return criterion == StaticCriterion::kTaylor ||
         criterion == StaticCriterion::kActivation;
}

std::vector<float> weight_filter_scores(const nn::Conv2d& conv,
                                        StaticCriterion criterion, Rng& rng) {
  const Tensor& w = conv.weight().value;
  const int out_c = conv.out_channels();
  const int64_t filter_size = w.size() / out_c;
  std::vector<float> scores(static_cast<size_t>(out_c), 0.f);

  switch (criterion) {
    case StaticCriterion::kL1: {
      for (int f = 0; f < out_c; ++f) {
        const float* p = w.data() + static_cast<int64_t>(f) * filter_size;
        double acc = 0.0;
        for (int64_t i = 0; i < filter_size; ++i) acc += std::abs(p[i]);
        scores[static_cast<size_t>(f)] = static_cast<float>(acc);
      }
      break;
    }
    case StaticCriterion::kL2: {
      for (int f = 0; f < out_c; ++f) {
        const float* p = w.data() + static_cast<int64_t>(f) * filter_size;
        double acc = 0.0;
        for (int64_t i = 0; i < filter_size; ++i) acc += double(p[i]) * p[i];
        scores[static_cast<size_t>(f)] = static_cast<float>(std::sqrt(acc));
      }
      break;
    }
    case StaticCriterion::kGeometricMedian: {
      // score[f] = sum_g ||W_f - W_g||_2 — small means near the geometric
      // median of the layer's filters, i.e. redundant.
      for (int f = 0; f < out_c; ++f) {
        const float* pf = w.data() + static_cast<int64_t>(f) * filter_size;
        double total = 0.0;
        for (int g = 0; g < out_c; ++g) {
          if (g == f) continue;
          const float* pg = w.data() + static_cast<int64_t>(g) * filter_size;
          double d = 0.0;
          for (int64_t i = 0; i < filter_size; ++i) {
            const double diff = double(pf[i]) - pg[i];
            d += diff * diff;
          }
          total += std::sqrt(d);
        }
        scores[static_cast<size_t>(f)] = static_cast<float>(total);
      }
      break;
    }
    case StaticCriterion::kRandom: {
      for (auto& s : scores) s = rng.uniform_float(0.f, 1.f);
      break;
    }
    default:
      AD_CHECK(false) << " criterion " << criterion_name(criterion)
                      << " needs calibration data; use ChannelStatsGate";
  }
  return scores;
}

}  // namespace antidote::baselines
