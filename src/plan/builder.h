// PlanBuilder — compiles a model's inference graph into an InferencePlan.
//
// A model describes its eval-phase dataflow by calling the builder's
// append methods in execution order (ConvNet::build_plan); the builder
// resolves every tensor shape, folds each conv's trailing BatchNorm/ReLU
// (and optional residual add) into the conv step's epilogue, runs buffer
// lifetime analysis to assign arena offsets with first-fit reuse, and
// precomputes the exact per-pass arena footprint, including the shared
// conv kernels' worst-case scratch. See plan.h for the execution side.
#pragma once

#include <string>

#include "nn/batchnorm.h"
#include "nn/pooling.h"
#include "plan/plan.h"

namespace antidote::plan {

class PlanBuilder {
 public:
  // `input_chw` is the per-sample input shape {C, H, W}.
  explicit PlanBuilder(Shape input_chw);

  // Buffer id of the network input.
  int input() const { return 0; }

  // Appends a fused conv step: conv, optional folded BatchNorm, optional
  // residual add (a previously produced buffer), optional ReLU — applied
  // in that order, matching the module walk. Returns the output buffer.
  int conv(nn::Conv2d* conv, nn::BatchNorm2d* bn, bool relu, int src,
           int residual, const std::string& name);

  // Appends a gate step running `gate` (any nn::Module). `block` is the
  // model block the gate's site belongs to and `spatially_aligned` whether
  // its spatial skips reach the consumer — both feed the serving cost
  // model via the consuming conv's metadata.
  int gate(nn::Module* gate, int src, const std::string& name, int block,
           bool spatially_aligned);

  int max_pool(nn::MaxPool2d* pool, int src, const std::string& name);
  int global_avg_pool(int src, const std::string& name);
  int linear(nn::Linear* fc, int src, const std::string& name);

  // Option-A residual shortcut (subsample by `stride`, zero-pad to
  // `out_c`). Returns `src` unchanged when the shortcut is the identity.
  int shortcut(int src, int out_c, int stride, const std::string& name);

  // Finalizes lifetimes, offsets and the arena footprint. The builder must
  // not be reused afterwards.
  InferencePlan finish();

 private:
  int add_buffer(const Shape& per_sample_shape, bool planned);
  const Shape& shape_of(int buffer) const;
  PlanOp& append(OpKind kind, int src, const Shape& out_shape, bool planned,
                 const std::string& name);

  InferencePlan plan_;
  // The gate step most recently appended, so the next conv consuming its
  // output inherits the pruning metadata.
  int last_gate_output_ = -1;
  int last_gate_block_ = -1;
  bool last_gate_spatial_ = false;
};

}  // namespace antidote::plan
