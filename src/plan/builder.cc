#include "plan/builder.h"

#include <algorithm>
#include <cmath>

#include "base/error.h"
#include "nn/conv_kernels.h"
#include "tensor/gemm.h"

namespace antidote::plan {

namespace {

constexpr int64_t kFloatAlign =
    static_cast<int64_t>(Workspace::kAlign / sizeof(float));

int64_t align_floats(int64_t floats) {
  return (floats + kFloatAlign - 1) & ~(kFloatAlign - 1);
}

}  // namespace

PlanBuilder::PlanBuilder(Shape input_chw) {
  AD_CHECK_EQ(input_chw.size(), 3u) << " plan input must be {C, H, W}";
  plan_.input_buffer_ = add_buffer(input_chw, /*planned=*/false);
}

int PlanBuilder::add_buffer(const Shape& per_sample_shape, bool planned) {
  PlanBuffer buf;
  buf.per_sample_shape = per_sample_shape;
  buf.per_sample_floats = align_floats(shape_floats(per_sample_shape));
  buf.planned = planned;
  buf.def_op = static_cast<int>(plan_.ops_.size()) - 1;  // fixed by append
  plan_.buffers_.push_back(buf);
  return static_cast<int>(plan_.buffers_.size()) - 1;
}

const Shape& PlanBuilder::shape_of(int buffer) const {
  AD_CHECK(buffer >= 0 &&
           buffer < static_cast<int>(plan_.buffers_.size()))
      << " unknown plan buffer " << buffer;
  return plan_.buffers_[static_cast<size_t>(buffer)].per_sample_shape;
}

PlanOp& PlanBuilder::append(OpKind kind, int src, const Shape& out_shape,
                            bool planned, const std::string& name) {
  const int op_index = static_cast<int>(plan_.ops_.size());
  PlanOp op;
  op.kind = kind;
  op.name = name;
  op.input = src;
  op.in_shape = shape_of(src);
  op.out_shape = out_shape;
  plan_.ops_.push_back(std::move(op));
  plan_.buffers_[static_cast<size_t>(src)].last_use_op = op_index;
  const int out = add_buffer(out_shape, planned);
  plan_.buffers_[static_cast<size_t>(out)].def_op = op_index;
  plan_.ops_.back().output = out;
  return plan_.ops_.back();
}

int PlanBuilder::conv(nn::Conv2d* conv, nn::BatchNorm2d* bn, bool relu,
                      int src, int residual, const std::string& name) {
  AD_CHECK(conv != nullptr);
  const Shape& in = shape_of(src);
  AD_CHECK_EQ(in.size(), 3u) << " conv input must be {C, H, W}";
  AD_CHECK_EQ(in[0], conv->in_channels()) << " conv input channels at " << name;
  ConvGeom g{conv->in_channels(), in[1],          in[2],
             conv->kernel_size(), conv->kernel_size(),
             conv->stride(),      conv->padding()};
  g.validate();
  const Shape out_shape{conv->out_channels(), g.out_h(), g.out_w()};
  if (bn != nullptr) {
    AD_CHECK_EQ(bn->channels(), conv->out_channels())
        << " BatchNorm channels at " << name;
  }
  if (residual >= 0) {
    AD_CHECK(shape_of(residual) == out_shape)
        << " residual shape mismatch at " << name;
  }

  PlanOp& op = append(OpKind::kConv, src, out_shape, /*planned=*/true, name);
  op.conv = conv;
  op.geom = g;
  op.residual = residual;
  if (residual >= 0) {
    PlanBuffer& res = plan_.buffers_[static_cast<size_t>(residual)];
    res.last_use_op =
        std::max(res.last_use_op, static_cast<int>(plan_.ops_.size()) - 1);
  }
  op.fuse_relu = relu;
  if (bn != nullptr) {
    // Fold the eval-mode BatchNorm into per-channel epilogue constants.
    // inv_std uses the module's exact expression (1 / sqrt(var + eps)) so
    // the fused result stays bitwise identical to the separate BN pass.
    op.fuse_bn = true;
    const int c = bn->channels();
    op.bn.mean.resize(static_cast<size_t>(c));
    op.bn.inv_std.resize(static_cast<size_t>(c));
    for (int ch = 0; ch < c; ++ch) {
      op.bn.mean[static_cast<size_t>(ch)] = bn->running_mean()[ch];
      op.bn.inv_std[static_cast<size_t>(ch)] =
          1.f / std::sqrt(bn->running_var()[ch] + bn->eps());
    }
    op.bn.gamma = bn->gamma().value.data();
    op.bn.beta = bn->beta().value.data();
  }
  op.dense_macs = static_cast<int64_t>(conv->out_channels()) *
                  g.out_positions() * g.patch_rows();
  // The conv consuming a gate's output (possibly through a pool — see
  // max_pool) is the one the gate masks. Each gate masks exactly one conv.
  if (src == last_gate_output_) {
    op.prune_block = last_gate_block_;
    op.prune_spatial = last_gate_spatial_;
    last_gate_output_ = -1;
  }
  return op.output;
}

int PlanBuilder::gate(nn::Module* gate, int src, const std::string& name,
                      int block, bool spatially_aligned) {
  AD_CHECK(gate != nullptr);
  // Gate outputs are produced by the gate module itself (from the context
  // arena), not placed by the planner; the footprint is still accounted.
  PlanOp& op =
      append(OpKind::kGate, src, shape_of(src), /*planned=*/false, name);
  op.gate = gate;
  last_gate_output_ = op.output;
  last_gate_block_ = block;
  last_gate_spatial_ = spatially_aligned;
  return op.output;
}

int PlanBuilder::max_pool(nn::MaxPool2d* pool, int src,
                          const std::string& name) {
  AD_CHECK(pool != nullptr);
  const Shape& in = shape_of(src);
  AD_CHECK_EQ(in.size(), 3u);
  const int k = pool->kernel_size(), stride = pool->stride();
  // h < k would truncate (h - k) / stride toward zero and "pass" the
  // emptiness check while reading out of bounds.
  AD_CHECK(in[1] >= k && in[2] >= k)
      << " MaxPool window larger than its input at " << name;
  const int oh = (in[1] - k) / stride + 1;
  const int ow = (in[2] - k) / stride + 1;
  AD_CHECK(oh > 0 && ow > 0) << " MaxPool output empty at " << name;
  PlanOp& op = append(OpKind::kMaxPool, src, Shape{in[0], oh, ow},
                      /*planned=*/true, name);
  op.pool_k = k;
  op.pool_stride = stride;
  // In the VGG-style models a gate's consumer conv sits BEHIND the
  // unit's pool (gate_consumer = next unit's conv): channel masks still
  // reach it, so carry the pruning metadata through. Spatial skips never
  // survive a grid change.
  if (src == last_gate_output_) {
    last_gate_output_ = op.output;
    last_gate_spatial_ = false;
  }
  return op.output;
}

int PlanBuilder::global_avg_pool(int src, const std::string& name) {
  const Shape& in = shape_of(src);
  AD_CHECK_EQ(in.size(), 3u);
  PlanOp& op = append(OpKind::kGlobalAvgPool, src, Shape{in[0]},
                      /*planned=*/true, name);
  return op.output;
}

int PlanBuilder::linear(nn::Linear* fc, int src, const std::string& name) {
  AD_CHECK(fc != nullptr);
  const Shape& in = shape_of(src);
  AD_CHECK_EQ(in.size(), 1u) << " linear input must be flat";
  AD_CHECK_EQ(in[0], fc->in_features()) << " linear input features at "
                                        << name;
  PlanOp& op = append(OpKind::kLinear, src, Shape{fc->out_features()},
                      /*planned=*/true, name);
  op.linear = fc;
  op.dense_macs = static_cast<int64_t>(fc->out_features()) * fc->in_features();
  return op.output;
}

int PlanBuilder::shortcut(int src, int out_c, int stride,
                          const std::string& name) {
  const Shape& in = shape_of(src);
  AD_CHECK_EQ(in.size(), 3u);
  AD_CHECK_GE(out_c, in[0]);
  if (out_c == in[0] && stride == 1) return src;  // identity
  const int oh = (in[1] + stride - 1) / stride;
  const int ow = (in[2] + stride - 1) / stride;
  PlanOp& op = append(OpKind::kShortcut, src, Shape{out_c, oh, ow},
                      /*planned=*/true, name);
  op.shortcut_stride = stride;
  return op.output;
}

InferencePlan PlanBuilder::finish() {
  AD_CHECK(!plan_.ops_.empty()) << " empty plan";
  plan_.output_buffer_ = plan_.ops_.back().output;
  // The logits must stay readable after the last op.
  plan_.buffers_[static_cast<size_t>(plan_.output_buffer_)].last_use_op =
      static_cast<int>(plan_.ops_.size());

  // A gate that decides to be an identity (zero ratios, disabled probe)
  // returns its INPUT tensor, so the gate's output may alias the input
  // buffer: the input must stay live as long as anything reads the gate's
  // output. Propagate in reverse op order so gate chains extend all the
  // way back.
  for (size_t i = plan_.ops_.size(); i-- > 0;) {
    const PlanOp& op = plan_.ops_[i];
    if (op.kind != OpKind::kGate) continue;
    PlanBuffer& in_buf = plan_.buffers_[static_cast<size_t>(op.input)];
    const PlanBuffer& out_buf =
        plan_.buffers_[static_cast<size_t>(op.output)];
    in_buf.last_use_op = std::max(in_buf.last_use_op, out_buf.last_use_op);
  }

  // --- buffer lifetime analysis + first-fit offset assignment ----------
  // A planned buffer is live from its defining op through its last use;
  // two buffers may share arena space iff their live ranges are disjoint.
  // First-fit over per-sample float offsets (every size is a multiple of
  // the arena alignment, so offsets scale with the batch size without
  // breaking alignment).
  struct Placed {
    int64_t begin, end;  // float range
    int def, last;       // live range
  };
  std::vector<Placed> placed;
  int64_t high_water = 0;
  for (size_t i = 0; i < plan_.buffers_.size(); ++i) {
    PlanBuffer& buf = plan_.buffers_[i];
    if (!buf.planned) continue;
    // Collect conflicting occupations, sorted by offset.
    std::vector<std::pair<int64_t, int64_t>> busy;
    for (const Placed& p : placed) {
      if (p.def <= buf.last_use_op && buf.def_op <= p.last) {
        busy.emplace_back(p.begin, p.end);
      }
    }
    std::sort(busy.begin(), busy.end());
    int64_t off = 0;
    for (const auto& [begin, end] : busy) {
      if (off + buf.per_sample_floats <= begin) break;
      off = std::max(off, end);
    }
    buf.offset_floats = off;
    placed.push_back(
        Placed{off, off + buf.per_sample_floats, buf.def_op, buf.last_use_op});
    high_water = std::max(high_water, off + buf.per_sample_floats);
  }
  plan_.act_floats_ = high_water;

  // --- ahead-of-time footprint + grouped-execution state ---------------
  // Gate-output accounting feeds arena_bytes(); per-op kernel scratch is
  // computed there directly from the op geometry (it depends on the batch
  // size under grouped execution). The plan's shared identity-index
  // (iota) array is built once, so masked forwards never rebuild index
  // sets; weight-panel caches are sized at reserve() time (dense-only
  // plans never pay them) or lazily on first pack.
  plan_.gate_floats_before_op_.assign(plan_.ops_.size(), 0);
  int64_t gate_floats = 0;
  int64_t max_dim = 0;
  for (size_t i = 0; i < plan_.ops_.size(); ++i) {
    PlanOp& op = plan_.ops_[i];
    plan_.gate_floats_before_op_[i] = gate_floats;
    if (op.kind == OpKind::kGate) {
      gate_floats += shape_floats(op.in_shape);
    } else if (op.kind == OpKind::kConv) {
      const ConvGeom& g = op.geom;
      max_dim = std::max<int64_t>(max_dim, g.in_c);
      max_dim = std::max<int64_t>(max_dim, op.out_shape[0]);
      max_dim = std::max<int64_t>(max_dim, g.out_positions());
    }
  }
  plan_.gate_floats_total_ = gate_floats;
  plan_.iota_.resize(static_cast<size_t>(max_dim));
  for (int64_t i = 0; i < max_dim; ++i) {
    plan_.iota_[static_cast<size_t>(i)] = static_cast<int>(i);
  }

  plan_.slots_.assign(plan_.buffers_.size(), Tensor());
  // Apply the default tile policy (auto) so every conv step leaves the
  // builder with its spatial tile width resolved; set_tile() re-derives
  // them if the caller overrides the policy before reserve().
  plan_.set_tile(plan_.tile_);
  return std::move(plan_);
}

}  // namespace antidote::plan
