// InferencePlan — the statically compiled form of a ConvNet's test-phase
// forward pass.
//
// AntiDote's runtime is dynamic per *sample* (the attention gates choose
// masks input by input), but everything else — layer order, tensor shapes,
// buffer lifetimes, BatchNorm statistics — is fixed once the model is
// built and put in eval mode. Following SoD²'s observation that dynamic
// networks still admit aggressive static optimization of the
// non-input-dependent parts, the plan compiler lowers the module tree into
// a flat array of PlanOp steps with:
//
//   - conv -> BN -> ReLU (-> +residual) collapsed into a single fused step:
//     the BatchNorm eval transform is folded into per-channel epilogue
//     constants (running mean and 1/sqrt(var+eps) precomputed at compile
//     time) and applied together with the residual add and the activation
//     on the cache-hot GEMM output of each sample, instead of as separate
//     full-tensor passes. The epilogue evaluates the exact expression the
//     BatchNorm2d module uses, so fused dense outputs are BITWISE
//     identical to the module walk (the classic W' = W * gamma/sqrt(var)
//     weight rewrite changes rounding; we deliberately fold constants, not
//     weights, and keep bit-equality as a hard invariant).
//   - every inter-op activation pre-assigned an offset in a per-pass arena
//     region via buffer lifetime analysis, and the whole pass footprint
//     (activations + gate outputs + the worst-case kernel scratch,
//     including the packed-GEMM panels) computed ahead of time, so an
//     executor can reserve the exact arena before the FIRST forward and
//     never grow or heap-allocate mid-pass.
//   - the per-sample ConvRuntimeMask stream flowing through unchanged:
//     gate steps run the installed gate modules, which hand keep sets to
//     their consumer Conv2d; the consumer's fused step picks them up.
//   - masked conv steps executed BATCH-GRANULAR and MASK-GROUPED: a drop
//     ratio quantizes a batch into a small number of distinct kept sets,
//     so the executor buckets samples by canonical mask key
//     (core::mask_key) each pass and runs every bucket as ONE compacted
//     multi-sample GEMM (gathered activations side by side, kept-filter
//     weight panel packed once per group and cached across passes), with
//     gather/scatter/epilogue parallelized across samples — instead of
//     paying per-sample kernel dispatch, im2col and weight gathering.
//   - mask groups executed CONCURRENTLY when a pass produces several:
//     whole groups dispatch to pool workers, each over a private arena
//     slice carved from the reserved arena (Workspace::bind_external),
//     with the kernels' internal parallel_fors running inline under the
//     nested-dispatch guard. Groups cover disjoint samples, so outputs
//     are bitwise identical to sequential group order — and the
//     all-distinct-mask worst case stops degenerating to serial
//     per-sample dispatch.
//   - per-op dense FLOPs, measured (EWMA-smoothed) step timings and
//     observed mask-group fractions, which the serving LatencyController
//     turns into a grouping-aware latency cost model whose group cost is
//     the critical-path worker (max over workers), not the group sum.
//
// A plan holds non-owning pointers into the model's modules (weights, BN
// affine parameters, gates), so it is owned by the model and must be
// recompiled (ConvNet::invalidate_plan) when the module structure or the
// BN running statistics change; ConvNet does this automatically on
// set_training and install_gate.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "nn/conv_kernels.h"
#include "nn/execution_context.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace antidote::plan {

// Cross-group parallelism cap: at most this many mask groups execute
// concurrently (each over its own arena slice), bounding the slice region
// of arena_bytes() on many-core machines. The effective width of a pass
// is min(total compute threads, distinct groups, this cap).
inline constexpr int kMaxGroupWorkers = 16;

enum class OpKind {
  kConv,           // fused conv (+BN) (+residual) (+ReLU)
  kGate,           // runs an installed gate module (masks its consumer)
  kMaxPool,        // 2-d max pooling
  kGlobalAvgPool,  // [N,C,H,W] -> [N,C]
  kLinear,         // classifier head
  kShortcut,       // option-A residual shortcut (subsample + zero-pad)
};

const char* op_kind_name(OpKind kind);

// Numeric execution regime of a compiled plan. kF32 is the bitwise
// reference regime; kInt8 runs conv steps through the quantized kernels
// (per-output-channel symmetric weights, per-tensor dynamic activations,
// u8xs8->s32 igemm with dequant folded into the fused epilogue's input).
// Non-conv steps (pool, linear, shortcut, gates) always execute in f32,
// as do spatially-masked conv groups (the shift-GEMM fallback): int8 is
// a per-conv-step regime, not a whole-graph datatype change.
enum class NumericRegime {
  kF32,
  kInt8,
};

const char* regime_name(NumericRegime regime);

// --- similar-mask union coarsening ----------------------------------------
//
// Exact-identity grouping collapses only equal kept sets, so a
// high-entropy batch degrades toward per-sample execution. Executing the
// UNION of near-identical kept sets is numerically safe for hard top-k
// gates — the union's extra channels/positions were zeroed upstream in the
// feature map, so their contributions are exact zeros and the grouped
// output stays bitwise identical to the module walk — and trades a few
// extra MACs for far fewer group dispatches. Which groups to merge is a
// LATENCY decision, not a similarity threshold: the planner simulates the
// executor's critical-path group schedule (ceil(G/W) strided dispatch over
// W pool workers) and merges exactly while the predicted critical path
// improves, with per-op MAC, panel-pack (regime-aware bytes/MAC) and
// dispatch-overhead terms.
//
// Merge eligibility is guarded structurally, independent of the cost
// terms: two groups merge only if their kept OUT-FILTER sets are equal (a
// filter kept by one sample has real weights, so a filter-union would
// write nonzero rows the other sample's walk leaves zero) and their kept
// channel and position sets intersect (disjoint masks never merge at any
// budget — their union is pure duplication).

enum class CoarsenMode { kOff, kAuto };

const char* coarsen_mode_name(CoarsenMode mode);

// --- spatially-tiled lowering ---------------------------------------------
//
// Every untiled conv step materializes the full [patch x out_positions]
// im2col panel, so scratch scales linearly with resolution — at 224x224
// the early VGG panels run to ~100 MB per sample and the GEMM operand
// falls out of LLC. Under tiling the executor processes the GEMM's N
// dimension in fixed-width output-position tiles: lowering fills a
// cache-sized tile panel, the GEMM consumes it, and the tile's columns
// are stored before the next tile is lowered, making im2col scratch
// O(patch x tile). Tiling splits only independent GEMM output columns,
// so f32 output (dense and grouped) is bitwise identical to the untiled
// path; int8 tiles quantize per tile (same relative-error budget vs f32).

enum class TileMode {
  kOff,    // never tile
  kAuto,   // per-op width from geometry + the cache-budget heuristic
  kFixed,  // every eligible op uses TilePolicy::n (clamped to its domain)
};

const char* tile_mode_name(TileMode mode);

struct TilePolicy {
  TileMode mode = TileMode::kAuto;
  int n = 0;  // fixed tile width (kFixed only)
};

// The plan compiler's per-op tile choice: 0 (untiled) when the op's full
// f32 working set — im2col panel plus output panel — fits the cache
// budget or the op is too small for tiling to pay (out_positions below
// kTileMinPositions); otherwise the largest width whose tile working set
// fits, floored at kTileMinWidth and rounded to the GEMM's 16-column
// register panel. Deterministic in the geometry alone (regime-independent,
// so a regime flip never changes the tile).
int64_t choose_conv_tile(const ConvGeom& geom, int out_c,
                         const TilePolicy& policy);

// Cache budget of the auto heuristic: the tile working set
// (patch + out_c) * 4 * tile bytes is kept under this. Sized toward a
// per-core LLC slice rather than the whole cache, so concurrently
// executing groups stay resident too.
inline constexpr int64_t kTileCacheBudgetBytes = 768 * 1024;
// Ops with fewer output positions than this never auto-tile (CIFAR-sized
// domains already fit; tiling them would only add loop overhead).
inline constexpr int64_t kTileMinPositions = 4096;
// Lower bound of an auto tile width (amortizes the per-tile GEMM setup).
inline constexpr int64_t kTileMinWidth = 64;

// Bounds of CoarsenPolicy::mac_bias (set_coarsen clamps into them).
inline constexpr double kMinCoarsenMacBias = 0.25;
inline constexpr double kMaxCoarsenMacBias = 4.0;

// Floor of the per-request compute cap (set_compute_cap clamps into
// [kMinComputeCap, 1.0]); below ~5% kept MACs the truncated masks carry
// too few channels to produce a meaningful prediction anyway.
inline constexpr double kMinComputeCap = 0.05;

struct CoarsenPolicy {
  CoarsenMode mode = CoarsenMode::kAuto;
  // Relative weight of the MAC term against the per-group pack+dispatch
  // terms in the merge decision. 1.0 is the honest latency model; the
  // serving LatencyController lowers it under budget pressure (union-added
  // MACs look cheaper -> merge harder) and relaxes it back toward neutral
  // when p95 sits inside the band.
  double mac_bias = 1.0;
};

// One exact-identity bucket's summary handed to coarsen_plan. Bitsets are
// packed little-endian (core::pack_kept_bits); keep-all components pack as
// all-ones, so intersection/union popcounts need no special casing.
struct CoarsenGroup {
  int size = 0;      // samples in the bucket
  int kept_ch = 0;   // popcount of the channel bits
  int kept_pos = 0;  // popcount of the position bits (= the op's full
                     // output-position count when it has no spatial domain)
  int kept_out = 0;  // kept output filters
  // Whether the bucket's mask carries a PROPER position subset (non-empty
  // positions vector). Groups of different position kinds never merge:
  // partial-position groups execute the input-stationary shift-GEMM and
  // keep-all groups the im2col channel path, whose accumulation orders
  // differ — one merged group can only run one of them, so a mixed merge
  // could not stay bitwise for both members. The flag tracks the ORIGINAL
  // kind; a union of proper subsets that saturates the domain still
  // executes as an explicit full position set on the shift-GEMM path.
  bool pos_partial = false;
  // Kept out-filter index vector (merge-eligibility equality compare);
  // never null while planning.
  const std::vector<int>* out_channels = nullptr;
};

// Per-op constants of the coarsening latency model, all expressed in
// MAC-equivalents so the terms compare directly with the group GEMM work.
struct CoarsenCost {
  double kk = 1.0;  // kernel positions (k_h * k_w)
  // MAC-equivalents per packed panel element: the kept-filter weight panel
  // (kept_out * kept_ch * kk elements) is gathered once per group per
  // pass, and its cost in time is its byte traffic divided by the op's
  // regime-aware bytes/MAC (PR 7's cost axis) — int8 panels move 4x fewer
  // bytes, so int8 merges are driven by proportionally cheaper pack terms.
  double pack_macs_per_elem = 0.0;
  // Fixed per-group dispatch cost (kernel entry, parallel_for handoff,
  // gather/scatter setup) in MAC-equivalents.
  double overhead_macs = 0.0;
  int threads = 1;  // process compute threads (caller + pool)
};

struct CoarsenDecision {
  int clusters = 0;  // final group count (== ngroups when nothing merged)
  // Predicted critical-path cost (MAC-equivalents) of the exact-identity
  // schedule and of the adopted merged schedule.
  double predicted_before = 0.0;
  double predicted_after = 0.0;
  // Union-added MACs per pass of the adopted schedule vs exact-identity
  // buckets (model count: kept_out * kept_ch * kk * kept_pos per sample).
  int64_t extra_macs = 0;
};

// Integer scratch ints coarsen_plan needs for `ngroups` buckets.
inline constexpr int coarsen_iscratch_ints(int ngroups) {
  return 5 * ngroups;
}

// Agglomerative latency-aware merge planner over one op's exact-identity
// buckets. `bits` is the groups' packed-bitset slab — ngroups rows of
// (ch_words + pos_words) u64 each, channel words first — and is CLOBBERED
// (rows accumulate unions while the chain runs). The chain greedily merges
// the eligible pair with the cheapest union-added MAC cost all the way
// down, evaluating the executor's exact strided critical path at every
// state, and adopts the argmin state — a single merge often cannot shrink
// ceil(G/W), so the win only appears several merges later (8 -> 7 groups
// at W=4 changes nothing; 8 -> 4 halves the rounds).
//
// `cluster` receives ngroups entries: cluster[i] = final group of bucket
// i, ids dense and numbered by smallest member index (the executor's
// deterministic group order). `iscratch` holds
// coarsen_iscratch_ints(ngroups) ints. Heap-allocation-free.
CoarsenDecision coarsen_plan(const CoarsenGroup* groups, int ngroups,
                             int ch_words, int pos_words,
                             const CoarsenCost& cost, double mac_bias,
                             uint64_t* bits, int* cluster, int* iscratch);

// Scalar element count of a (per-sample) shape — shared by the compiler's
// buffer sizing and the executor's pointer arithmetic.
inline int64_t shape_floats(const Shape& s) {
  int64_t n = 1;
  for (int d : s) n *= d;
  return n;
}

// BatchNorm folded into a conv step. mean/inv_std are compile-time
// constants from the running statistics; gamma/beta point at the live
// affine parameters (updated in place by the optimizer and checkpoint
// loads). The epilogue computes gamma*((v - mean)*inv_std) + beta — the
// BatchNorm2d eval expression verbatim, for bitwise equality.
struct FusedBatchNorm {
  std::vector<float> mean;
  std::vector<float> inv_std;
  const float* gamma = nullptr;
  const float* beta = nullptr;
};

struct PlanOp {
  OpKind kind = OpKind::kConv;
  std::string name;

  int input = -1;     // buffer id consumed
  int output = -1;    // buffer id produced
  int residual = -1;  // kConv: buffer added in the epilogue (-1 = none)
  Shape in_shape;     // per-sample, e.g. {C,H,W}
  Shape out_shape;    // per-sample

  // kConv
  nn::Conv2d* conv = nullptr;
  ConvGeom geom;  // per-sample geometry, resolved at compile time
  bool fuse_bn = false;
  bool fuse_relu = false;
  FusedBatchNorm bn;

  // kGate
  nn::Module* gate = nullptr;

  // kMaxPool
  int pool_k = 0;
  int pool_stride = 0;

  // kLinear
  nn::Linear* linear = nullptr;

  // kShortcut
  int shortcut_stride = 1;

  // Cost-model metadata: which settings block's drop ratios mask this
  // conv's input (via the gate feeding it), and whether spatial skips can
  // reach it.
  int prune_block = -1;
  bool prune_spatial = false;

  // Cross-pass kept-filter weight panel cache for the grouped masked
  // kernels (sized by InferencePlan::reserve, or lazily on first pack;
  // 100% hit rate for static filter masks, which repeat every pass).
  nn::WeightPanelCache pack_cache;

  // kConv, int8 regime: per-output-channel symmetric quantization of the
  // conv weight, computed once by set_regime(NumericRegime::kInt8) at
  // plan-"compile" time (empty under f32). The dense int8 path consumes
  // these rows directly; masked channel groups gather kept-filter panels
  // from them into pack_cache.
  nn::Int8ConvWeights int8_w;

  // Per-pass union-mask storage for coarsened groups: cluster c of a
  // coarsened pass materializes its union kept sets into coarse_masks[c].
  // reserve() pre-sizes the vectors' capacities for the op's full domains
  // so a warm coarsened pass stays heap-allocation-free; unreserved
  // callers grow lazily on the first coarsened pass and converge, like
  // the arena.
  std::vector<nn::ConvRuntimeMask> coarse_masks;

  // Per-pass clamped-mask storage for the compute cap: when any sample's
  // runtime mask demands more than the plan's kept-MAC ceiling at this
  // step, the whole batch's masks are copied here (offenders truncated)
  // and the executor runs off this storage instead. Sized like
  // coarse_masks: reserve() pre-grows capacities to the op's full domains
  // so a warm capped pass stays heap-allocation-free.
  std::vector<nn::ConvRuntimeMask> capped_masks;

  // kConv: chosen output-position tile width (0 = untiled). Set at
  // plan-compile time from the tile policy and geometry; shared by the
  // executor and the arena-sizing formulas so they always agree.
  int64_t tile_pos = 0;

  // --- introspection ---
  int64_t dense_macs = 0;  // per sample
  int64_t last_macs = 0;   // whole batch, most recent run
  // EXECUTED group count of the most recent run (post-coarsening;
  // 0 = ran dense).
  int last_groups = 0;
  // Exact-identity bucket count of the most recent run, before any
  // coarsening (== last_groups when coarsening is off or declined).
  int last_groups_raw = 0;
  // Samples of the most recent run whose masks exceeded the compute cap
  // and were clamped (0 when uncapped or every mask fit).
  int last_capped = 0;
  // Most recent coarsening decision: union-added MACs of the adopted
  // schedule (model count, 0 when nothing merged), total extra kept
  // channels summed over samples (union kept_ch minus the sample's own),
  // and the planner's predicted critical-path costs (MAC-equivalents)
  // before/after merging.
  int64_t last_coarsen_extra_macs = 0;
  int64_t last_coarsen_extra_ch = 0;
  double last_coarsen_pred_before = 0.0;
  double last_coarsen_pred_after = 0.0;
  // Smoothed RAW measured step time (per batch). The cost model pairs it
  // with ewma_units below: predicted time at hypothetical conditions is
  // ewma_ms * hypothetical_units / ewma_units. Time and units are
  // smoothed SEPARATELY and divided once at prediction — normalizing each
  // sample by its own units before averaging would average reciprocals
  // and systematically inflate the estimate when conditions fluctuate.
  double ewma_ms = 0.0;
  // Smoothed cost units of the runs behind ewma_ms: executed-MAC fraction
  // x group-cost fraction for masked runs, 1 for dense runs (the model's
  // "cost scales with critical-path group dispatches x compacted size"
  // axis).
  double ewma_units = 1.0;
  // Smoothed group-cost fraction of masked runs: ceil(groups / width) /
  // batch — the critical-path worker's group dispatches under cross-group
  // parallelism (max over workers, not the group sum). 1 until a masked
  // batch has executed.
  double ewma_group_frac = 1.0;
};

// One inter-op activation. Planned buffers live at a fixed per-sample
// float offset inside the pass's activation region (scaled by the batch
// size at run time); unplanned buffers (the network input, gate outputs)
// are carried as tensors produced elsewhere.
struct PlanBuffer {
  Shape per_sample_shape;
  int64_t per_sample_floats = 0;  // rounded up to the arena alignment
  int64_t offset_floats = 0;      // per-sample units; meaningful if planned
  int def_op = -1;                // producing op (-1: network input)
  int last_use_op = -1;
  bool planned = true;
};

// Snapshot of one op's cost for the serving-side latency cost model.
struct OpCost {
  std::string name;
  OpKind kind = OpKind::kConv;
  int64_t dense_macs = 0;  // per sample
  double ewma_ms = 0.0;    // raw smoothed per-batch step time
  // Observed mean group-COST fraction (ceil(groups / parallel width) /
  // batch): with groups dispatched across pool workers, a masked step
  // costs the critical-path worker's dispatches x compacted size — a max
  // over workers, not the sum over groups.
  double group_frac = 1.0;
  // Smoothed cost units behind ewma_ms (keep fraction x group fraction of
  // the measured runs); predictions rescale by hypothetical units / this.
  double measured_units = 1.0;
  int prune_block = -1;
  bool prune_spatial = false;
  // Dense-path memory traffic per MAC under the plan's current regime:
  // (weight bytes + im2col panel bytes + f32 output bytes) / dense MACs.
  // Int8 conv steps move ~4x fewer weight/activation bytes per MAC than
  // f32, which is exactly what the controller needs to predict the int8
  // vs f32 latency ratio for memory-bound steps. 0 for non-conv ops.
  double bytes_per_mac = 0.0;
  // Regime the snapshot was taken under (conv steps only; non-conv steps
  // always run f32).
  NumericRegime regime = NumericRegime::kF32;
};

// Predicted per-batch latency of a cost snapshot at hypothetical uniform
// keep fractions: fixed-cost ops contribute their smoothed time, prunable
// ops rescale theirs by (keep x observed group fraction) / measured
// units — the same arithmetic the serving LatencyController inverts, made
// available to admission control and benches without a controller.
double predict_batch_ms(const std::vector<OpCost>& ops, double channel_keep,
                        double spatial_keep);

class InferencePlan {
 public:
  // Executes the plan. `x` is the [N,C,H,W] batch (any storage); the
  // returned logits borrow plan-owned arena memory and are invalidated by
  // the context's next begin_pass(). Reserves the arena if the caller did
  // not (a no-op once capacity exists).
  Tensor run(const Tensor& x, nn::ExecutionContext& ctx);

  // Exact bytes one pass of batch size `n` draws from the arena:
  // activation region + gate outputs + worst-case kernel scratch
  // (including the cross-group per-worker slice region, which scales with
  // the process's fixed thread budget — ANTIDOTE_THREADS — capped at
  // kMaxGroupWorkers). Known before the first forward ever runs.
  size_t arena_bytes(int n) const;
  // Pre-grows `ws` so a pass of batch size `n` performs zero arena growths
  // and zero heap allocations, starting with the very first one. Also
  // sizes every conv step's weight-panel cache for its worst kept set —
  // callers that skip the reserve (ad-hoc evaluation) instead grow the
  // caches lazily on first use and converge, like the arena itself.
  void reserve(Workspace& ws, int n);

  // Switches the plan's numeric regime. Entering kInt8 quantizes every
  // conv step's weight per output channel (a one-time compile-style cost;
  // idempotent — already-quantized steps are kept). Measured step-time
  // EWMAs are rescaled by the regimes' bytes/MAC ratio so the cost model
  // predicts the new regime's latency from the old regime's measurements
  // instead of relearning from a cold prior. Caches need no invalidation:
  // the panel match key includes the regime. Call before reserve() — the
  // int8 paths need quantized-column scratch the f32 sizing omits.
  void set_regime(NumericRegime regime);
  NumericRegime regime() const { return regime_; }

  // Installs the similar-mask union coarsening policy (mac_bias clamped
  // to [kMinCoarsenMacBias, kMaxCoarsenMacBias]). Safe at any time — the
  // policy only gates the per-pass merge decision, never the arena
  // footprint: arena_bytes(n) accounts the coarsening scratch
  // unconditionally, and coarsening only ever REDUCES the executed group
  // count, so the existing max-over-G kernel-scratch worst cases still
  // bound every coarsened schedule.
  void set_coarsen(CoarsenPolicy policy);
  const CoarsenPolicy& coarsen() const { return coarsen_; }

  // Installs the spatial tiling policy and recomputes every conv step's
  // tile width (choose_conv_tile). Changing the policy changes the
  // arena's scratch requirements, so call before reserve() — like
  // set_regime. Shrinking tiles after a reserve stays safe only for
  // kOff -> never; re-reserve when in doubt.
  void set_tile(TilePolicy policy);
  const TilePolicy& tile() const { return tile_; }

  // Installs the per-request compute cap: the maximum kept-MAC fraction
  // (kept channels x kept positions x kept filters over the op's dense
  // domains) any sample's runtime mask may demand of a conv step. Samples
  // over the cap get their kept sets truncated in canonical index order —
  // channels first, then spatial positions — before bucketing, so a
  // hostile maximum-keep input degrades gracefully instead of inflating
  // the step's compute. 1.0 (the default) disables capping; values are
  // clamped to [kMinComputeCap, 1.0]. Capped passes skip union
  // coarsening: a union could re-add truncated channels whose upstream
  // activations are NOT zero, silently undoing the cap. Safe at any time;
  // the arena footprint is unaffected (capping only ever shrinks kept
  // sets, and capped_masks storage is accounted by reserve()).
  void set_compute_cap(double cap);
  double compute_cap() const { return compute_cap_; }
  // Samples clamped by the cap in the most recent run (max over conv
  // steps: a sample capped anywhere counts once).
  int last_capped_samples() const;
  // Peak-arena breakdown at batch n: index of the conv op whose scratch
  // sets the pass's high-water mark (-1 when no op has scratch), plus
  // that op's scratch bytes via *op_scratch. Exposed for plan-dump's
  // footprint report.
  int peak_scratch_op(int n, size_t* op_scratch = nullptr) const;
  // One op's worst-case kernel scratch bytes at batch n under the current
  // regime and tile choice (0 for non-conv ops).
  size_t op_scratch_bytes(int op_index, int n) const;

  const std::vector<PlanOp>& ops() const { return ops_; }
  const std::vector<PlanBuffer>& buffers() const { return buffers_; }
  int64_t activation_floats_per_sample() const { return act_floats_; }

  // Sum over ops of the most recent run's executed MACs (masked ops report
  // their actual, reduced counts).
  int64_t last_macs() const;
  int64_t dense_macs_per_sample() const;

  // Executed mask-group count of the most recent run: the max over masked
  // conv steps of how many compacted GEMM groups actually dispatched,
  // AFTER union coarsening (0 when the last run executed fully dense).
  int last_mask_groups() const;
  // Exact-identity bucket count of the most recent run, before coarsening
  // (== last_mask_groups() when coarsening is off or declined every merge).
  int last_mask_groups_raw() const;
  // Union-added MACs of the most recent run, summed over masked conv
  // steps (model count; 0 when nothing merged).
  int64_t last_coarsen_extra_macs() const;
  // Those extra MACs as a fraction of the run's executed MACs — the
  // extra-arithmetic overhead the coarsened schedule accepted in exchange
  // for fewer group dispatches.
  double last_coarsen_extra_mac_frac() const;
  // Cumulative kept-filter weight-panel cache hits/misses over all conv
  // steps (static filter masks hit 100% after their first pack). Safe to
  // read while workers execute: the counters are relaxed atomics.
  int64_t pack_cache_hits() const;
  int64_t pack_cache_misses() const;
  // Miss taxonomy: cold misses (first sighting of a kept set) vs capacity
  // misses (a kept set seen before, but evicted since — the signature of
  // way starvation), plus the eviction count itself. cold + capacity ==
  // misses.
  int64_t pack_cache_cold_misses() const;
  int64_t pack_cache_capacity_misses() const;
  int64_t pack_cache_evictions() const;
  // Groups executed in the cross-group parallel regime, which packs into
  // per-worker slices and bypasses the cache by design (see
  // WeightPanelCache::bypass).
  int64_t pack_cache_bypass() const;

  // Thread-unsafe snapshot for the owner thread; the scheduler converts it
  // into a LatencyController cost model.
  std::vector<OpCost> cost_snapshot() const;

  // Human-readable op table (antidote_cli plan-dump).
  std::string to_string() const;

 private:
  friend class PlanBuilder;

  std::vector<PlanOp> ops_;
  std::vector<PlanBuffer> buffers_;
  int input_buffer_ = 0;
  int output_buffer_ = -1;
  NumericRegime regime_ = NumericRegime::kF32;
  CoarsenPolicy coarsen_;
  TilePolicy tile_;
  double compute_cap_ = 1.0;  // 1.0 = uncapped
  // Applies the compute cap to a masked conv pass: returns `masks`
  // untouched when every sample fits, otherwise copies the batch into
  // op.capped_masks (offenders truncated) and returns a span over it.
  std::span<const nn::ConvRuntimeMask> cap_runtime_masks(
      PlanOp& op, std::span<const nn::ConvRuntimeMask> masks, int n);
  int64_t act_floats_ = 0;  // per-sample high water of planned offsets

  // Per-sample float count of every gate output allocated before each op
  // runs, in op order — with the per-op kernel scratch formulas (exact in
  // the batch size; see conv_step_scratch_bytes in plan.cc) this
  // reproduces the pass's allocation sequence for arena_bytes().
  std::vector<int64_t> gate_floats_before_op_;
  int64_t gate_floats_total_ = 0;

  // Reused across runs (sized at compile time, no per-pass allocation).
  std::vector<Tensor> slots_;
  // Per-worker arena-slice views for cross-group parallel execution,
  // rebound to slices of the pass arena each masked pass
  // (Workspace::bind_external — rebinding is heap-free). Created by
  // reserve(), or lazily on the first multi-group pass of an unreserved
  // caller; behind a unique_ptr so the plan stays movable.
  // Each worker's slice view gets its own cache line: a Workspace object
  // is well under 64 bytes, so adjacent workers' bump pointers would
  // otherwise share a line and false-share on every slice allocation —
  // visible as inflated L1d misses in the kGroup phase counters.
  struct GroupSlices {
    struct alignas(64) Slot {
      Workspace ws;
    };
    Slot slot[kMaxGroupWorkers];
  };
  std::unique_ptr<GroupSlices> group_slices_;
  void ensure_group_slices();
  // Shared ascending identity indices, sized at the plan's max dimension;
  // spans over a prefix stand in for any empty (= keep all) mask
  // component, replacing the per-pass iota rebuilds the executor used to
  // pay inside every masked conv op.
  std::vector<int> iota_;
};

}  // namespace antidote::plan
