#include "plan/plan.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <span>
#include <sstream>

#include "base/error.h"
#include "base/parallel.h"
#include "base/timer.h"
#include "core/mask.h"
#include "nn/conv_kernels.h"
#include "obs/trace.h"
#include "nn/pooling.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace antidote::plan {

namespace {

// The sample-wise fused epilogue (BatchNorm, residual add, ReLU) lives in
// nn::fused_epilogue — SIMD-vectorized, bitwise identical to the module
// walk. This builds its parameter block from a conv step.
nn::FusedEpilogueParams epilogue_params(const PlanOp& op) {
  nn::FusedEpilogueParams p;
  p.bn = op.fuse_bn;
  p.relu = op.fuse_relu;
  if (op.fuse_bn) {
    p.mean = op.bn.mean.data();
    p.inv_std = op.bn.inv_std.data();
    p.gamma = op.bn.gamma;
    p.beta = op.bn.beta;
  }
  return p;
}

// Total compute threads of this process (caller + pool workers) — fixed
// for the process lifetime (ANTIDOTE_THREADS), so arena sizing computed
// against it stays exact for every pass.
int compute_threads() { return 1 + global_pool().size(); }

// Number of mask groups executing concurrently for a pass that bucketed
// into `groups`: the executor and the arena sizing MUST agree on this.
int group_parallel_width(int threads, int groups) {
  return std::max(1, std::min({threads, groups, kMaxGroupWorkers}));
}

// Exact worst-case kernel scratch of one conv step at batch n, mirroring
// the executor's allocation sequence byte for byte: the dense batched
// path (per-sample im2col slices + GEMM panels) vs the mask-grouped path
// (group-key bucketing arrays + the group kernels' scratch). The grouped
// term covers both execution regimes:
//   - sequential (1 group, or a single compute thread): groups run
//     between rewinds, so the bound is the single-group-of-n worst case
//     (monotone in group size).
//   - cross-group parallel (G >= 2 groups over W = min(threads, G, cap)
//     workers): the executor carves W slices each sized for the largest
//     group, and with G groups the largest group holds at most n - G + 1
//     samples — maximize W * slice(n - G + 1) over G.
// The bound depends on the process thread budget (compute_threads), which
// is fixed for the process lifetime, so it is still exact per pass.
size_t conv_step_scratch_bytes(const PlanOp& op, int n, bool int8_regime) {
  if (op.kind != OpKind::kConv) return 0;
  const ConvGeom& g = op.geom;
  const int out_c = op.out_shape[0];
  const size_t nn_ = static_cast<size_t>(n);
  const size_t dense =
      nn::conv_batch_dense_scratch_bytes(g, out_c, n, int8_regime);
  size_t masked_kernel =
      nn::conv_group_masked_scratch_bytes(g, out_c, n, int8_regime);
  const int threads = compute_threads();
  for (int groups = 2; groups <= n; ++groups) {
    const int width = group_parallel_width(threads, groups);
    if (width < 2) break;  // single-threaded: the parallel regime never runs
    masked_kernel = std::max(
        masked_kernel,
        static_cast<size_t>(width) *
            nn::conv_group_masked_slice_bytes(g, out_c, n - groups + 1,
                                              int8_regime));
  }
  const size_t masked =
      Workspace::align_up(sizeof(uint64_t) * nn_) +       // mask keys
      Workspace::align_up(sizeof(int) * nn_) +            // sample order
      Workspace::align_up(sizeof(int) * (nn_ + 1)) +      // group bounds
      masked_kernel;
  return std::max(dense, masked);
}

// Dense-path memory traffic per MAC of a conv step under `regime`:
// (weight operand + im2col panel) at the regime's element size plus the
// always-f32 output, over the step's dense MACs. Shared by the cost
// snapshot and set_regime's EWMA rescale so both use the same axis.
double conv_bytes_per_mac(const PlanOp& op, NumericRegime regime) {
  if (op.kind != OpKind::kConv || op.dense_macs <= 0) return 0.0;
  const ConvGeom& g = op.geom;
  const int64_t out_c = op.out_shape[0];
  const int64_t patch =
      static_cast<int64_t>(g.in_c) * g.k_h * g.k_w;
  const int64_t pos = g.out_positions();
  const double es = regime == NumericRegime::kInt8 ? 1.0 : 4.0;
  const double bytes = static_cast<double>(out_c * patch) * es +
                       static_cast<double>(patch * pos) * es +
                       static_cast<double>(out_c * pos) * 4.0;
  return bytes / static_cast<double>(op.dense_macs);
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv: return "conv";
    case OpKind::kGate: return "gate";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kGlobalAvgPool: return "gap";
    case OpKind::kLinear: return "linear";
    case OpKind::kShortcut: return "shortcut";
  }
  return "?";
}

const char* regime_name(NumericRegime regime) {
  switch (regime) {
    case NumericRegime::kF32: return "f32";
    case NumericRegime::kInt8: return "int8";
  }
  return "?";
}

size_t InferencePlan::arena_bytes(int n) const {
  AD_CHECK_GT(n, 0);
  const size_t nn = static_cast<size_t>(n);
  // Room for the caller-staged input batch plus the pass itself.
  const size_t input_bytes = Workspace::align_up(
      static_cast<size_t>(
          shape_floats(buffers_[static_cast<size_t>(input_buffer_)]
                           .per_sample_shape)) *
      nn * sizeof(float));
  // Pass footprint: the activation region is one allocation; each gate
  // output is one allocation (bounded with one alignment pad each); the
  // kernel scratch of op i sits on top of the gates allocated before it.
  const size_t act = Workspace::align_up(static_cast<size_t>(act_floats_) * nn *
                              sizeof(float));
  size_t peak = act + Workspace::align_up(static_cast<size_t>(gate_floats_total_) * nn *
                               sizeof(float) +
                               Workspace::kAlign * ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    const size_t gates = Workspace::align_up(
        static_cast<size_t>(gate_floats_before_op_[i]) * nn * sizeof(float) +
        Workspace::kAlign * (i + 1));
    peak = std::max(peak,
                    act + gates +
                        conv_step_scratch_bytes(
                            ops_[i], n, regime_ == NumericRegime::kInt8));
  }
  return input_bytes + peak;
}

void InferencePlan::reserve(Workspace& ws, int n) {
  ws.reserve(arena_bytes(n));
  // Weight-panel caches are sized here, not at compile time: a plan that
  // only ever runs dense (no pruning engine, no static masks) would
  // otherwise pay its whole conv weight footprint again for caches the
  // dense path never touches.
  for (PlanOp& op : ops_) {
    if (op.kind == OpKind::kConv) {
      op.pack_cache.prepare(op.out_shape[0], op.geom.in_c,
                            op.geom.k_h * op.geom.k_w,
                            regime_ == NumericRegime::kInt8);
    }
  }
  // Pre-create the per-worker slice views (and their one-entry block
  // tables) so even the first cross-group parallel pass performs zero
  // heap allocations — rebinding them to real slices is heap-free.
  ensure_group_slices();
}

void InferencePlan::ensure_group_slices() {
  if (group_slices_ != nullptr) return;
  group_slices_ = std::make_unique<GroupSlices>();
  for (GroupSlices::Slot& s : group_slices_->slot) {
    s.ws.bind_external(nullptr, 0);
  }
}

void InferencePlan::set_regime(NumericRegime regime) {
  if (regime == regime_) return;
  for (PlanOp& op : ops_) {
    if (op.kind != OpKind::kConv) continue;
    if (regime == NumericRegime::kInt8 && op.int8_w.empty()) {
      nn::quantize_conv_weights(op.conv->weight().value.data(),
                                op.out_shape[0], op.geom.in_c,
                                op.geom.k_h * op.geom.k_w, op.int8_w);
    }
    // Carry the learned timing across the switch: conv steps on this
    // runtime are dominated by operand traffic, so the measured-time EWMA
    // is rescaled by the regimes' bytes/MAC ratio instead of restarting
    // from a cold prior (the EWMA then refines toward the truth from a
    // ~right starting point as the new regime's passes land).
    if (op.ewma_ms > 0.0) {
      const double from = conv_bytes_per_mac(op, regime_);
      const double to = conv_bytes_per_mac(op, regime);
      if (from > 0.0 && to > 0.0) op.ewma_ms *= to / from;
    }
  }
  regime_ = regime;
}

int64_t InferencePlan::last_macs() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.last_macs;
  return total;
}

int64_t InferencePlan::dense_macs_per_sample() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.dense_macs;
  return total;
}

int InferencePlan::last_mask_groups() const {
  int groups = 0;
  for (const PlanOp& op : ops_) groups = std::max(groups, op.last_groups);
  return groups;
}

int64_t InferencePlan::pack_cache_hits() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.hits.get();
  return total;
}

int64_t InferencePlan::pack_cache_misses() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.misses.get();
  return total;
}

int64_t InferencePlan::pack_cache_bypass() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.bypass.get();
  return total;
}

int64_t InferencePlan::pack_cache_cold_misses() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.cold_misses.get();
  return total;
}

int64_t InferencePlan::pack_cache_capacity_misses() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.capacity_misses.get();
  return total;
}

int64_t InferencePlan::pack_cache_evictions() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.evictions.get();
  return total;
}

std::vector<OpCost> InferencePlan::cost_snapshot() const {
  std::vector<OpCost> out;
  out.reserve(ops_.size());
  for (const PlanOp& op : ops_) {
    OpCost c;
    c.name = op.name;
    c.kind = op.kind;
    c.dense_macs = op.dense_macs;
    c.ewma_ms = op.ewma_ms;
    c.group_frac = op.ewma_group_frac;
    c.measured_units = op.ewma_units;
    c.prune_block = op.prune_block;
    c.prune_spatial = op.prune_spatial;
    c.bytes_per_mac = conv_bytes_per_mac(op, regime_);
    c.regime = regime_;
    out.push_back(std::move(c));
  }
  return out;
}

Tensor InferencePlan::run(const Tensor& x, nn::ExecutionContext& ctx) {
  AD_CHECK_EQ(x.ndim(),
              static_cast<int>(buffers_[static_cast<size_t>(input_buffer_)]
                                   .per_sample_shape.size()) +
                  1)
      << " plan input rank";
  const int n = x.dim(0);
  const PlanBuffer& in_buf = buffers_[static_cast<size_t>(input_buffer_)];
  for (size_t d = 0; d < in_buf.per_sample_shape.size(); ++d) {
    AD_CHECK_EQ(x.dim(static_cast<int>(d) + 1), in_buf.per_sample_shape[d])
        << " plan input shape (op table compiled for another shape)";
  }

  Workspace& ws = ctx.workspace();
  // Everything below the input-staging term of arena_bytes(): the caller
  // already staged (or heap-owns) the input.
  ws.reserve(arena_bytes(n) -
             Workspace::align_up(static_cast<size_t>(shape_floats(in_buf.per_sample_shape)) *
                      static_cast<size_t>(n) * sizeof(float)));
  float* act_base = ws.alloc_floats(act_floats_ * n);

  slots_[static_cast<size_t>(input_buffer_)] = x;
  const auto slot_out = [&](const PlanOp& op) {
    const PlanBuffer& buf = buffers_[static_cast<size_t>(op.output)];
    Shape batch_shape;
    batch_shape.push_back(n);
    for (int d : buf.per_sample_shape) batch_shape.push_back(d);
    Tensor t = Tensor::borrow(act_base + buf.offset_floats * n, batch_shape);
    slots_[static_cast<size_t>(op.output)] = t;
    return t;
  };

  const int threads = compute_threads();
  for (size_t oi = 0; oi < ops_.size(); ++oi) {
    PlanOp& op = ops_[oi];
    const int op_index = static_cast<int>(oi);
    // Phase spans inside the kernels attribute to this op via the
    // thread-local current-op (group workers set their own below).
    obs::ScopedOp op_attr(op_index);
    obs::PhaseScope step_span(obs::Phase::kStep, op_index);
    WallTimer step_timer;
    const Tensor& in = slots_[static_cast<size_t>(op.input)];
    switch (op.kind) {
      case OpKind::kConv: {
        Tensor out = slot_out(op);
        const ConvGeom& g = op.geom;
        const int out_c = op.out_shape[0];
        const int64_t pos = g.out_positions();
        const int64_t in_floats = shape_floats(op.in_shape);
        const int64_t out_floats = shape_floats(op.out_shape);
        const float* wp = op.conv->weight().value.data();
        const float* bp =
            op.conv->has_bias() ? op.conv->bias().value.data() : nullptr;
        const float* res_base =
            op.residual >= 0
                ? slots_[static_cast<size_t>(op.residual)].data()
                : nullptr;
        const std::span<const nn::ConvRuntimeMask> masks =
            op.conv->take_runtime_masks();
        const Workspace::Mark scratch = ws.mark();
        // Int8 regime: channel/filter-masked groups and the dense path run
        // the quantized kernels; groups carrying spatial positions fall
        // back to the f32 shift-GEMM (a documented mixed-regime step — the
        // shift-GEMM's scattered accumulation has no int8 formulation that
        // preserves its skip ratio).
        const bool int8 = regime_ == NumericRegime::kInt8;
        int64_t macs = 0;
        if (!masks.empty()) {
          AD_CHECK_EQ(static_cast<int>(masks.size()), n)
              << " runtime mask count vs batch size";
          // Arena memory is uninitialized; pruned positions must stay zero.
          std::memset(out.data(), 0,
                      static_cast<size_t>(out.size()) * sizeof(float));
          const nn::ConvIdentityIndices ids{iota_.data(), iota_.data(),
                                            iota_.data()};
          // Bucket the batch by canonical mask key: a drop ratio quantizes
          // the samples into a handful of distinct kept sets, and every
          // bucket executes as ONE compacted multi-sample GEMM instead of
          // per-sample gather/pack/dispatch. Sorting (key, index) keeps
          // the partition deterministic; equal keys are confirmed with an
          // exact kept-set comparison, so a hash collision can only split
          // a bucket, never corrupt one.
          uint64_t* keys = ws.alloc<uint64_t>(n);
          int* order = ws.alloc<int>(n);
          for (int b = 0; b < n; ++b) {
            keys[b] = core::mask_key(masks[static_cast<size_t>(b)]);
            order[b] = b;
          }
          std::sort(order, order + n, [&](int a, int b) {
            return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
          });
          int* group_begin = ws.alloc<int>(n + 1);
          int groups = 0;
          group_begin[0] = 0;
          for (int i = 1; i <= n; ++i) {
            if (i == n || keys[order[i]] != keys[order[i - 1]] ||
                !core::mask_equal(masks[static_cast<size_t>(order[i])],
                                  masks[static_cast<size_t>(order[i - 1])])) {
              group_begin[++groups] = i;
            }
          }
          const int width = group_parallel_width(threads, groups);
          if (width >= 2) {
            // Cross-group parallel: whole groups dispatch to pool workers
            // (worker w runs groups w, w+width, ...), each over a private
            // arena slice carved here on the owner thread — workers never
            // touch the owning arena or the shared pack cache, and every
            // kernel-internal parallel_for runs inline under the
            // nested-dispatch guard. Groups cover disjoint samples, so
            // this is bitwise identical to sequential group order.
            ensure_group_slices();  // no-op when reserved; unreserved
                                    // callers converge like the arena
            int max_gs = 1;
            for (int gi = 0; gi < groups; ++gi) {
              max_gs = std::max(max_gs,
                                group_begin[gi + 1] - group_begin[gi]);
            }
            const size_t slice_bytes =
                nn::conv_group_masked_slice_bytes(g, out_c, max_gs, int8);
            char* slab =
                ws.alloc<char>(static_cast<int64_t>(width) *
                               static_cast<int64_t>(slice_bytes));
            // One cache line per worker tally: plain adjacent int64s here
            // would false-share across all active workers on every group.
            struct alignas(64) WorkerTally {
              int64_t macs = 0;
            };
            WorkerTally worker_macs[kMaxGroupWorkers];
            parallel_for(
                0, width,
                [&](int64_t w0, int64_t w1) {
                  for (int64_t w = w0; w < w1; ++w) {
                    // Pool workers carry no current-op: establish it so
                    // the group spans and the kernels' nested phase spans
                    // attribute to this conv step.
                    obs::ScopedOp worker_attr(op_index);
                    Workspace& slice = group_slices_->slot[w].ws;
                    slice.bind_external(slab + w * slice_bytes, slice_bytes);
                    int64_t local = 0;
                    for (int gi = static_cast<int>(w); gi < groups;
                         gi += width) {
                      const int gb = group_begin[gi];
                      const int ge = group_begin[gi + 1];
                      obs::PhaseScope group_span(obs::Phase::kGroup,
                                                 op_index);
                      const nn::ConvRuntimeMask& gm =
                          masks[static_cast<size_t>(order[gb])];
                      const std::span<const int> gsamples(
                          order + gb, static_cast<size_t>(ge - gb));
                      if (int8 && gm.positions.empty()) {
                        local += nn::conv_group_masked_i8(
                            in.data(), in_floats, g, op.int8_w, out_c, bp,
                            gm, gsamples, ids, /*cache=*/nullptr,
                            out.data(), out_floats, slice);
                      } else {
                        local += nn::conv_group_masked(
                            in.data(), in_floats, g, wp, out_c, bp, gm,
                            gsamples, ids, /*cache=*/nullptr, out.data(),
                            out_floats, slice);
                      }
                    }
                    worker_macs[w].macs = local;
                  }
                },
                /*grain=*/1);
            for (int w = 0; w < width; ++w) macs += worker_macs[w].macs;
            op.pack_cache.bypass.add(groups);
          } else {
            for (int gi = 0; gi < groups; ++gi) {
              const int gb = group_begin[gi];
              const int ge = group_begin[gi + 1];
              obs::PhaseScope group_span(obs::Phase::kGroup, op_index);
              const nn::ConvRuntimeMask& gm =
                  masks[static_cast<size_t>(order[gb])];
              const std::span<const int> gsamples(
                  order + gb, static_cast<size_t>(ge - gb));
              if (int8 && gm.positions.empty()) {
                macs += nn::conv_group_masked_i8(
                    in.data(), in_floats, g, op.int8_w, out_c, bp, gm,
                    gsamples, ids, &op.pack_cache, out.data(), out_floats,
                    ws);
              } else {
                macs += nn::conv_group_masked(in.data(), in_floats, g, wp,
                                              out_c, bp, gm, gsamples, ids,
                                              &op.pack_cache, out.data(),
                                              out_floats, ws);
              }
            }
          }
          op.last_groups = groups;
        } else {
          if (int8) {
            macs = nn::conv_batch_dense_i8(in.data(), in_floats, g,
                                           op.int8_w, out_c, bp, n,
                                           out.data(), out_floats, ws);
          } else {
            macs = nn::conv_batch_dense(in.data(), in_floats, g, wp, out_c,
                                        bp, n, out.data(), out_floats, ws);
          }
          op.last_groups = 0;
        }
        if (op.fuse_bn || op.fuse_relu || res_base != nullptr) {
          const nn::FusedEpilogueParams ep = epilogue_params(op);
          obs::PhaseScope epilogue_span(obs::Phase::kEpilogue, op_index);
          parallel_for(
              0, n,
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b) {
                  nn::fused_epilogue(out.data() + b * out_floats,
                                     res_base != nullptr
                                         ? res_base + b * out_floats
                                         : nullptr,
                                     out_c, pos, ep);
                }
              },
              /*grain=*/1);
        }
        ws.rewind(scratch);
        op.conv->note_external_execution(macs, !masks.empty());
        op.last_macs = macs;
        break;
      }
      case OpKind::kGate: {
        // The gate module runs itself (identical to the module walk, so
        // masks and outputs match bitwise) and hands keep sets to its
        // consumer Conv2d, whose fused step picks them up next.
        slots_[static_cast<size_t>(op.output)] =
            op.gate->forward(in, ctx);
        break;
      }
      case OpKind::kMaxPool: {
        Tensor out = slot_out(op);
        nn::max_pool_forward_into(in.data(), n, op.in_shape[0],
                                  op.in_shape[1], op.in_shape[2], op.pool_k,
                                  op.pool_stride, out.data());
        break;
      }
      case OpKind::kGlobalAvgPool: {
        Tensor out = slot_out(op);
        ops::channel_mean_nchw_into(in, out.data());
        break;
      }
      case OpKind::kLinear: {
        Tensor out = slot_out(op);
        const int in_f = op.linear->in_features();
        const int out_f = op.linear->out_features();
        // y[N, out] = x[N, in] * W[out, in]^T — the Linear module's exact
        // kernel call and bias loop.
        gemm_nt(n, out_f, in_f, 1.f, in.data(),
                op.linear->weight().value.data(), 0.f, out.data());
        if (op.linear->has_bias()) {
          const float* bp = op.linear->bias().value.data();
          for (int i = 0; i < n; ++i) {
            float* row = out.data() + static_cast<int64_t>(i) * out_f;
            for (int j = 0; j < out_f; ++j) row[j] += bp[j];
          }
        }
        op.last_macs = static_cast<int64_t>(n) * out_f * in_f;
        op.linear->note_external_execution(op.last_macs);
        break;
      }
      case OpKind::kShortcut: {
        Tensor out = slot_out(op);
        nn::shortcut_subsample_into(in.data(), n, op.in_shape[0],
                                    op.in_shape[1], op.in_shape[2],
                                    op.out_shape[0], op.shortcut_stride,
                                    out.data());
        break;
      }
    }
    const double ms = step_timer.millis();
    // Raw time and its cost units (keep fraction x group fraction) are
    // smoothed as separate series; the cost model divides the two
    // averages once at prediction time (see the ewma_ms contract).
    double units = 1.0;
    double group_frac = -1.0;  // < 0: this run carried no masks
    if (op.kind == OpKind::kConv && op.last_macs > 0 && op.dense_macs > 0) {
      units = static_cast<double>(op.last_macs) /
              (static_cast<double>(op.dense_macs) * static_cast<double>(n));
      if (op.last_groups > 0) {
        // Cross-group parallelism makes group cost the CRITICAL-PATH
        // worker, not the group sum: with W workers the longest worker
        // runs ceil(G / W) group dispatches, so that — not G — is the
        // dispatch count the measured time reflects.
        const int width = group_parallel_width(threads, op.last_groups);
        group_frac =
            static_cast<double>((op.last_groups + width - 1) / width) /
            static_cast<double>(n);
        units *= group_frac;
      }
    }
    if (op.ewma_ms == 0.0) {
      // Seed every series from the first sample — blending group_frac
      // from its 1.0 prior while units seeds to the measured value would
      // make the cost model's numerator and denominator disagree for
      // many batches.
      op.ewma_ms = ms;
      op.ewma_units = units;
      if (group_frac >= 0.0) op.ewma_group_frac = group_frac;
    } else {
      op.ewma_ms = 0.8 * op.ewma_ms + 0.2 * ms;
      op.ewma_units = 0.8 * op.ewma_units + 0.2 * units;
      if (group_frac >= 0.0) {
        op.ewma_group_frac = 0.8 * op.ewma_group_frac + 0.2 * group_frac;
      }
    }
  }
  return slots_[static_cast<size_t>(output_buffer_)];
}

std::string InferencePlan::to_string() const {
  std::ostringstream os;
  os << "InferencePlan: " << ops_.size() << " ops, "
     << dense_macs_per_sample() << " dense MACs/sample, "
     << activation_floats_per_sample() << " activation floats/sample, "
     << "arena " << arena_bytes(1) << " B at batch 1, "
     << "simd " << nn::simd_lane_width() << "-lane ("
     << nn::simd_isa_name() << "), regime " << regime_name(regime_);
  if (regime_ == NumericRegime::kInt8) {
    os << " (igemm " << nn::int8_isa_name() << ")";
  }
  os << ", vnni " << (nn::cpu_supports_vnni() ? "yes" : "no")
     << ", group workers <= "
     << group_parallel_width(compute_threads(), kMaxGroupWorkers) << "\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "%-3s %-9s %-18s %-16s %-14s %12s %10s %6s\n", "#", "op",
                "name", "out(shape)", "epilogue", "MACs/sample", "ewma_ms",
                "groups");
  os << line;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const PlanOp& op = ops_[i];
    std::string shape_str;
    for (size_t d = 0; d < op.out_shape.size(); ++d) {
      shape_str += (d == 0 ? "" : "x") + std::to_string(op.out_shape[d]);
    }
    std::string fused;
    if (op.kind == OpKind::kConv) {
      if (op.fuse_bn) fused += "+bn";
      if (op.residual >= 0) fused += "+res";
      if (op.fuse_relu) fused += "+relu";
      if (op.prune_block >= 0) {
        fused += "(m" + std::to_string(op.prune_block) + ")";
      }
    }
    // groups: distinct-mask buckets of the op's last run ("-" = ran dense
    // or has not run yet).
    const std::string groups_str =
        op.last_groups > 0 ? std::to_string(op.last_groups) : "-";
    std::snprintf(line, sizeof(line),
                  "%-3zu %-9s %-18s %-16s %-14s %12lld %10.4f %6s\n", i,
                  op_kind_name(op.kind), op.name.c_str(), shape_str.c_str(),
                  fused.c_str(), static_cast<long long>(op.dense_macs),
                  op.ewma_ms, groups_str.c_str());
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "weight-pack cache: %lld hits / %lld misses "
                "(%lld cold, %lld capacity) / %lld evictions / %lld "
                "bypassed (parallel groups); last pass mask groups: %d\n",
                static_cast<long long>(pack_cache_hits()),
                static_cast<long long>(pack_cache_misses()),
                static_cast<long long>(pack_cache_cold_misses()),
                static_cast<long long>(pack_cache_capacity_misses()),
                static_cast<long long>(pack_cache_evictions()),
                static_cast<long long>(pack_cache_bypass()),
                last_mask_groups());
  os << line;
  return os.str();
}

}  // namespace antidote::plan
