#include "plan/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <span>
#include <sstream>

#include "base/error.h"
#include "base/parallel.h"
#include "base/timer.h"
#include "core/mask.h"
#include "nn/conv_kernels.h"
#include "obs/trace.h"
#include "nn/pooling.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace antidote::plan {

namespace {

// The sample-wise fused epilogue (BatchNorm, residual add, ReLU) lives in
// nn::fused_epilogue — SIMD-vectorized, bitwise identical to the module
// walk. This builds its parameter block from a conv step.
nn::FusedEpilogueParams epilogue_params(const PlanOp& op) {
  nn::FusedEpilogueParams p;
  p.bn = op.fuse_bn;
  p.relu = op.fuse_relu;
  if (op.fuse_bn) {
    p.mean = op.bn.mean.data();
    p.inv_std = op.bn.inv_std.data();
    p.gamma = op.bn.gamma;
    p.beta = op.bn.beta;
  }
  return p;
}

// Total compute threads of this process (caller + pool workers) — fixed
// for the process lifetime (ANTIDOTE_THREADS), so arena sizing computed
// against it stays exact for every pass.
int compute_threads() { return 1 + global_pool().size(); }

// Number of mask groups executing concurrently for a pass that bucketed
// into `groups`: the executor and the arena sizing MUST agree on this.
int group_parallel_width(int threads, int groups) {
  return std::max(1, std::min({threads, groups, kMaxGroupWorkers}));
}

// Whether a conv's spatial grid is preserved (stride 1, out == in): the
// only geometry under which spatial position masks are valid, and hence
// the only one whose coarsening state carries a position-bitset domain.
bool conv_grid_preserving(const ConvGeom& g) {
  return g.stride == 1 && g.out_h() == g.in_h && g.out_w() == g.in_w;
}

// Fixed per-group dispatch cost of the coarsening latency model, in
// MAC-equivalents: kernel entry, parallel_for handoff and gather/scatter
// setup — the part of a group's cost that does not scale with its size,
// i.e. exactly what merging groups eliminates.
constexpr double kCoarsenOverheadMacs = 20000.0;

// Arena bytes the in-pass coarsening planner draws between its mark and
// rewind: two packed-bitset slabs (immutable originals + the planner's
// working unions), the group summaries, the cluster assignment and the
// planner's integer scratch. Sized for the n-bucket worst case.
size_t coarsen_scratch_bytes(const ConvGeom& g, int n) {
  const int wpg =
      core::mask_bits_words(g.in_c) +
      (conv_grid_preserving(g) ? core::mask_bits_words(g.in_h * g.in_w) : 0);
  const size_t nn_ = static_cast<size_t>(n);
  return 2 * Workspace::align_up(sizeof(uint64_t) * nn_ *
                                 static_cast<size_t>(wpg)) +
         Workspace::align_up(sizeof(CoarsenGroup) * nn_) +
         Workspace::align_up(sizeof(int) * nn_) +
         Workspace::align_up(sizeof(int) *
                             static_cast<size_t>(coarsen_iscratch_ints(n)));
}

// Exact worst-case kernel scratch of one conv step at batch n, mirroring
// the executor's allocation sequence byte for byte: the dense batched
// path (per-sample im2col slices + GEMM panels) vs the mask-grouped path
// (group-key bucketing arrays + the group kernels' scratch). The grouped
// term covers both execution regimes:
//   - sequential (1 group, or a single compute thread): groups run
//     between rewinds, so the bound is the single-group-of-n worst case
//     (monotone in group size).
//   - cross-group parallel (G >= 2 groups over W = min(threads, G, cap)
//     workers): the executor carves W slices each sized for the largest
//     group, and with G groups the largest group holds at most n - G + 1
//     samples — maximize W * slice(n - G + 1) over G.
// The bound depends on the process thread budget (compute_threads), which
// is fixed for the process lifetime, so it is still exact per pass.
size_t conv_step_scratch_bytes(const PlanOp& op, int n, bool int8_regime) {
  if (op.kind != OpKind::kConv) return 0;
  const ConvGeom& g = op.geom;
  const int out_c = op.out_shape[0];
  const size_t nn_ = static_cast<size_t>(n);
  // Position masks only ever reach a conv through a spatially-aligned
  // gate (the gate clears them otherwise), so the untiled spatial
  // shift-GEMM bound — O(gs * pos), immune to tiling — is accounted only
  // for gate consumers marked prune_spatial. This is what keeps a tiled
  // plan's reserved arena sub-linear in the output grid: without it every
  // grid-preserving conv would pay the spatial path's full-width scratch
  // whether or not spatial masks can occur.
  const bool spatial = op.prune_spatial;
  const size_t dense =
      nn::conv_batch_dense_scratch_bytes(g, out_c, n, int8_regime,
                                         op.tile_pos);
  size_t masked_kernel = nn::conv_group_masked_scratch_bytes(
      g, out_c, n, int8_regime, op.tile_pos, spatial);
  const int threads = compute_threads();
  for (int groups = 2; groups <= n; ++groups) {
    const int width = group_parallel_width(threads, groups);
    if (width < 2) break;  // single-threaded: the parallel regime never runs
    masked_kernel = std::max(
        masked_kernel,
        static_cast<size_t>(width) *
            nn::conv_group_masked_slice_bytes(g, out_c, n - groups + 1,
                                              int8_regime, op.tile_pos,
                                              spatial));
  }
  // The coarsening terms are accounted unconditionally (policy-independent
  // bound): the per-pass merge decision may be flipped at runtime by the
  // serving controller, and must never be able to grow a reserved arena.
  // The planner scratch itself is rewound before any group kernel runs,
  // so it shares a max with the kernel term rather than stacking on it.
  const size_t masked =
      Workspace::align_up(sizeof(uint64_t) * nn_) +       // mask keys
      Workspace::align_up(sizeof(int) * nn_) +            // sample order
      Workspace::align_up(sizeof(int) * (nn_ + 1)) +      // group bounds
      Workspace::align_up(sizeof(int) * nn_) +            // coarsened order
      Workspace::align_up(sizeof(int) * (nn_ + 1)) +      // coarsened bounds
      Workspace::align_up(sizeof(void*) * nn_) +          // group mask ptrs
      std::max(coarsen_scratch_bytes(g, n), masked_kernel);
  return std::max(dense, masked);
}

// Dense-path memory traffic per MAC of a conv step under `regime`:
// (weight operand + im2col panel) at the regime's element size plus the
// always-f32 output, over the step's dense MACs. Shared by the cost
// snapshot and set_regime's EWMA rescale so both use the same axis.
//
// Spatially-tiled steps (op.tile_pos > 0) replace the full im2col panel
// term with the actual DRAM traffic of the tiled schedule: the input
// plane is read once per pass, and the panel itself is one cache-resident
// tile re-lowered in place — its DRAM cost is a single tile's worth, not
// patch*pos. This is what teaches the cost model that tiling turned the
// lowering from a memory-bound stream into a cache-resident one.
double conv_bytes_per_mac(const PlanOp& op, NumericRegime regime) {
  if (op.kind != OpKind::kConv || op.dense_macs <= 0) return 0.0;
  const ConvGeom& g = op.geom;
  const int64_t out_c = op.out_shape[0];
  const int64_t patch =
      static_cast<int64_t>(g.in_c) * g.k_h * g.k_w;
  const int64_t pos = g.out_positions();
  const double es = regime == NumericRegime::kInt8 ? 1.0 : 4.0;
  const bool tiled = op.tile_pos > 0 && op.tile_pos < pos;
  const double panel_elems =
      tiled ? static_cast<double>(g.in_c) * g.in_h * g.in_w +
                  static_cast<double>(patch * op.tile_pos)
            : static_cast<double>(patch * pos);
  const double bytes = static_cast<double>(out_c * patch) * es +
                       panel_elems * es +
                       static_cast<double>(out_c * pos) * 4.0;
  return bytes / static_cast<double>(op.dense_macs);
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv: return "conv";
    case OpKind::kGate: return "gate";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kGlobalAvgPool: return "gap";
    case OpKind::kLinear: return "linear";
    case OpKind::kShortcut: return "shortcut";
  }
  return "?";
}

const char* regime_name(NumericRegime regime) {
  switch (regime) {
    case NumericRegime::kF32: return "f32";
    case NumericRegime::kInt8: return "int8";
  }
  return "?";
}

const char* coarsen_mode_name(CoarsenMode mode) {
  switch (mode) {
    case CoarsenMode::kOff: return "off";
    case CoarsenMode::kAuto: return "auto";
  }
  return "?";
}

const char* tile_mode_name(TileMode mode) {
  switch (mode) {
    case TileMode::kOff: return "off";
    case TileMode::kAuto: return "auto";
    case TileMode::kFixed: return "fixed";
  }
  return "?";
}

int64_t choose_conv_tile(const ConvGeom& geom, int out_c,
                         const TilePolicy& policy) {
  const int64_t pos = geom.out_positions();
  if (policy.mode == TileMode::kOff || pos <= 1) return 0;
  if (policy.mode == TileMode::kFixed) {
    int64_t t = policy.n;
    if (t <= 0 || t >= pos) return 0;
    return t;
  }
  // kAuto. The tile working set per output column is one lowered patch
  // column plus one output column, both f32 (the int8 path quantizes the
  // same f32 tile in place, so geometry alone decides — the chosen width
  // is regime-independent and a set_regime flip never resizes the arena).
  const int64_t patch = static_cast<int64_t>(geom.in_c) * geom.k_h * geom.k_w;
  const int64_t col_bytes = (patch + out_c) * 4;
  if (pos < kTileMinPositions) return 0;           // small grids: not worth it
  if (col_bytes * pos <= kTileCacheBudgetBytes) return 0;  // already resident
  int64_t width = kTileCacheBudgetBytes / std::max<int64_t>(col_bytes, 1);
  width = std::max(width, kTileMinWidth);
  width &= ~int64_t{15};  // round down to whole 16-column GEMM panels
  width = std::max(width, kTileMinWidth);
  if (width >= pos) return 0;
  return width;
}

CoarsenDecision coarsen_plan(const CoarsenGroup* groups, int ngroups,
                             int ch_words, int pos_words,
                             const CoarsenCost& cost, double mac_bias,
                             uint64_t* bits, int* cluster, int* iscratch) {
  AD_CHECK_GT(ngroups, 0);
  mac_bias = std::clamp(mac_bias, kMinCoarsenMacBias, kMaxCoarsenMacBias);
  const int wpg = ch_words + pos_words;
  // Mutable per-cluster state lives in the caller's integer scratch; the
  // planner itself never allocates (it runs inside the zero-alloc pass).
  int* kc = iscratch;                    // kept channels of cluster root
  int* kp = iscratch + ngroups;          // kept positions of cluster root
  int* gs = iscratch + 2 * ngroups;      // samples in cluster
  int* parent = iscratch + 3 * ngroups;  // merge tree (parent[i] < i)
  int* best_parent = iscratch + 4 * ngroups;  // argmin-state snapshot
  for (int i = 0; i < ngroups; ++i) {
    kc[i] = groups[i].kept_ch;
    kp[i] = groups[i].kept_pos;
    gs[i] = groups[i].size;
    parent[i] = i;
    best_parent[i] = i;
  }

  // Per-sample model MACs / per-group panel-pack MAC-equivalents of the
  // cluster rooted at i (out-filter sets never change under a merge — the
  // eligibility guard requires them equal — so the original group's
  // kept_out stays valid for its cluster).
  const auto macs_of = [&](int i) {
    return static_cast<double>(groups[i].kept_out) * kc[i] * cost.kk * kp[i];
  };
  const auto pack_of = [&](int i) {
    return static_cast<double>(groups[i].kept_out) * kc[i] * cost.kk *
           cost.pack_macs_per_elem;
  };

  // Predicted cost of the current state under the executor's EXACT
  // schedule. With W >= 2 workers, whole groups dispatch in the strided
  // order (worker w runs clusters w, w+W, ...), each group single-threaded
  // inline — the op's latency is the critical-path worker (the PR 5
  // ceil(G/W) group-cost axis, computed per assignment instead of
  // averaged). With W < 2 (one cluster, or a single compute thread) the
  // groups run sequentially and every kernel parallelizes INTERNALLY
  // across the whole pool, so the MAC term divides by the thread count —
  // this is why merging all the way to one group can beat any strided
  // schedule on a batch of near-identical masks.
  const auto critical_path = [&](int alive_count) {
    const int width =
        std::max(1, std::min({cost.threads, alive_count, kMaxGroupWorkers}));
    if (width < 2) {
      double total = 0.0;
      for (int i = 0; i < ngroups; ++i) {
        if (parent[i] != i) continue;
        total += mac_bias * gs[i] * macs_of(i) / cost.threads + pack_of(i) +
                 cost.overhead_macs;
      }
      return total;
    }
    double lane[kMaxGroupWorkers] = {};
    int idx = 0;
    for (int i = 0; i < ngroups; ++i) {
      if (parent[i] != i) continue;
      lane[idx % width] +=
          mac_bias * gs[i] * macs_of(i) + pack_of(i) + cost.overhead_macs;
      ++idx;
    }
    double worst = 0.0;
    for (int w = 0; w < width; ++w) worst = std::max(worst, lane[w]);
    return worst;
  };

  double base_macs = 0.0;  // exact-identity batch MACs (model count)
  for (int i = 0; i < ngroups; ++i) base_macs += gs[i] * macs_of(i);

  CoarsenDecision dec;
  dec.clusters = ngroups;
  dec.predicted_before = critical_path(ngroups);
  dec.predicted_after = dec.predicted_before;
  double best = dec.predicted_before;
  double cur_macs = base_macs;
  double best_macs = base_macs;
  int alive = ngroups;

  // Agglomerative chain: merge the eligible pair with the smallest
  // union-added MAC cost, all the way down, and adopt the argmin state of
  // the whole chain — one merge alone often cannot shrink the critical
  // path (8 -> 7 groups at W=4 removes nothing from the longest worker),
  // so stopping at the first non-improving merge would never reach the
  // 8 -> 4 or 8 -> 1 payoff states.
  while (alive >= 2) {
    int bi = -1, bj = -1, bkc = 0, bkp = 0;
    double bdelta = 0.0;
    for (int i = 0; i < ngroups; ++i) {
      if (parent[i] != i) continue;
      const uint64_t* ri = bits + static_cast<int64_t>(i) * wpg;
      for (int j = i + 1; j < ngroups; ++j) {
        if (parent[j] != j) continue;
        // Hard eligibility guards, independent of any budget: equal kept
        // out-filter sets (a filter union would write rows the other
        // sample's walk leaves zero), and intersecting channel/position
        // sets (disjoint masks never merge — their union is pure
        // duplication, and the union of zeroed-upstream sets only stays
        // "a few extra MACs" when the sets actually overlap).
        if (!(*groups[i].out_channels == *groups[j].out_channels)) continue;
        // Position KIND must match too: partial-position groups run the
        // shift-GEMM, keep-all groups the im2col channel path, and a
        // merged group can only run one of them bitwise (see
        // CoarsenGroup::pos_partial). Kind is an original-mask property,
        // so the roots' flags stay valid for their clusters.
        if (pos_words > 0 &&
            groups[i].pos_partial != groups[j].pos_partial) {
          continue;
        }
        const uint64_t* rj = bits + static_cast<int64_t>(j) * wpg;
        const int ich = core::mask_intersect_bits(ri, rj, ch_words);
        if (ich == 0) continue;
        const int ukc = kc[i] + kc[j] - ich;
        int ukp = kp[i];
        if (pos_words > 0) {
          const int ipos = core::mask_intersect_bits(ri + ch_words,
                                                     rj + ch_words, pos_words);
          if (ipos == 0) continue;
          ukp = kp[i] + kp[j] - ipos;
        }
        const double mu =
            static_cast<double>(groups[i].kept_out) * ukc * cost.kk * ukp;
        const double delta = (gs[i] + gs[j]) * mu - gs[i] * macs_of(i) -
                             gs[j] * macs_of(j);
        if (bi < 0 || delta < bdelta) {
          bi = i;
          bj = j;
          bkc = ukc;
          bkp = ukp;
          bdelta = delta;
        }
      }
    }
    if (bi < 0) break;  // no eligible pair left
    core::union_bits_inplace(bits + static_cast<int64_t>(bi) * wpg,
                             bits + static_cast<int64_t>(bj) * wpg, wpg);
    kc[bi] = bkc;
    kp[bi] = bkp;
    gs[bi] += gs[bj];
    parent[bj] = bi;
    cur_macs += bdelta;
    --alive;
    const double level = critical_path(alive);
    // Adopt strict critical-path improvements, and also exact ties that
    // add no MACs over the incumbent: when the workers are saturated
    // (lanes of one group each), merging near-duplicate buckets leaves
    // the critical path unchanged while still deleting whole pack +
    // dispatch terms of TOTAL work — the lane model just cannot see
    // freed-lane savings, so cost ties break toward fewer groups.
    if (level < best - 1e-9 ||
        (level <= best + 1e-9 && cur_macs <= best_macs + 1e-9)) {
      best = std::min(best, level);
      best_macs = cur_macs;
      std::memcpy(best_parent, parent,
                  sizeof(int) * static_cast<size_t>(ngroups));
    }
  }

  // Adopt the argmin state. best_parent[i] < i for every non-root, so one
  // ascending sweep resolves the dense cluster ids (numbered by smallest
  // member = root index order, the executor's deterministic group order).
  int next_id = 0;
  for (int i = 0; i < ngroups; ++i) {
    cluster[i] = best_parent[i] == i ? next_id++
                                     : cluster[best_parent[i]];
  }
  dec.clusters = next_id;
  dec.predicted_after = best;
  dec.extra_macs = std::llround(best_macs - base_macs);
  return dec;
}

size_t InferencePlan::arena_bytes(int n) const {
  AD_CHECK_GT(n, 0);
  const size_t nn = static_cast<size_t>(n);
  // Room for the caller-staged input batch plus the pass itself.
  const size_t input_bytes = Workspace::align_up(
      static_cast<size_t>(
          shape_floats(buffers_[static_cast<size_t>(input_buffer_)]
                           .per_sample_shape)) *
      nn * sizeof(float));
  // Pass footprint: the activation region is one allocation; each gate
  // output is one allocation (bounded with one alignment pad each); the
  // kernel scratch of op i sits on top of the gates allocated before it.
  const size_t act = Workspace::align_up(static_cast<size_t>(act_floats_) * nn *
                              sizeof(float));
  size_t peak = act + Workspace::align_up(static_cast<size_t>(gate_floats_total_) * nn *
                               sizeof(float) +
                               Workspace::kAlign * ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    const size_t gates = Workspace::align_up(
        static_cast<size_t>(gate_floats_before_op_[i]) * nn * sizeof(float) +
        Workspace::kAlign * (i + 1));
    peak = std::max(peak,
                    act + gates +
                        conv_step_scratch_bytes(
                            ops_[i], n, regime_ == NumericRegime::kInt8));
  }
  return input_bytes + peak;
}

void InferencePlan::reserve(Workspace& ws, int n) {
  ws.reserve(arena_bytes(n));
  // Weight-panel caches are sized here, not at compile time: a plan that
  // only ever runs dense (no pruning engine, no static masks) would
  // otherwise pay its whole conv weight footprint again for caches the
  // dense path never touches.
  for (PlanOp& op : ops_) {
    if (op.kind == OpKind::kConv) {
      op.pack_cache.prepare(op.out_shape[0], op.geom.in_c,
                            op.geom.k_h * op.geom.k_w,
                            regime_ == NumericRegime::kInt8);
      // Union-mask storage for coarsened passes: at most n clusters, each
      // bounded by the op's full kept-set domains. Sized unconditionally
      // (the policy can flip to kAuto at runtime, and a warm coarsened
      // pass must stay heap-allocation-free either way).
      if (op.coarse_masks.size() < static_cast<size_t>(n)) {
        op.coarse_masks.resize(static_cast<size_t>(n));
      }
      for (nn::ConvRuntimeMask& um : op.coarse_masks) {
        um.channels.reserve(static_cast<size_t>(op.geom.in_c));
        if (conv_grid_preserving(op.geom)) {
          um.positions.reserve(
              static_cast<size_t>(op.geom.in_h * op.geom.in_w));
        }
        um.out_channels.reserve(static_cast<size_t>(op.out_shape[0]));
      }
      // Clamped-mask storage for the compute cap, sized exactly like the
      // union-mask storage above (one slot per sample, full-domain
      // capacities) so a warm capped pass stays heap-allocation-free even
      // when an attack trips the cap on every request.
      if (op.capped_masks.size() < static_cast<size_t>(n)) {
        op.capped_masks.resize(static_cast<size_t>(n));
      }
      for (nn::ConvRuntimeMask& cm : op.capped_masks) {
        cm.channels.reserve(static_cast<size_t>(op.geom.in_c));
        if (conv_grid_preserving(op.geom)) {
          cm.positions.reserve(
              static_cast<size_t>(op.geom.in_h * op.geom.in_w));
        }
        cm.out_channels.reserve(static_cast<size_t>(op.out_shape[0]));
      }
    }
  }
  // Pre-create the per-worker slice views (and their one-entry block
  // tables) so even the first cross-group parallel pass performs zero
  // heap allocations — rebinding them to real slices is heap-free.
  ensure_group_slices();
}

void InferencePlan::ensure_group_slices() {
  if (group_slices_ != nullptr) return;
  group_slices_ = std::make_unique<GroupSlices>();
  for (GroupSlices::Slot& s : group_slices_->slot) {
    s.ws.bind_external(nullptr, 0);
  }
}

void InferencePlan::set_regime(NumericRegime regime) {
  if (regime == regime_) return;
  for (PlanOp& op : ops_) {
    if (op.kind != OpKind::kConv) continue;
    if (regime == NumericRegime::kInt8 && op.int8_w.empty()) {
      nn::quantize_conv_weights(op.conv->weight().value.data(),
                                op.out_shape[0], op.geom.in_c,
                                op.geom.k_h * op.geom.k_w, op.int8_w);
    }
    // Carry the learned timing across the switch: conv steps on this
    // runtime are dominated by operand traffic, so the measured-time EWMA
    // is rescaled by the regimes' bytes/MAC ratio instead of restarting
    // from a cold prior (the EWMA then refines toward the truth from a
    // ~right starting point as the new regime's passes land).
    if (op.ewma_ms > 0.0) {
      const double from = conv_bytes_per_mac(op, regime_);
      const double to = conv_bytes_per_mac(op, regime);
      if (from > 0.0 && to > 0.0) op.ewma_ms *= to / from;
    }
  }
  regime_ = regime;
}

int64_t InferencePlan::last_macs() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.last_macs;
  return total;
}

int64_t InferencePlan::dense_macs_per_sample() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.dense_macs;
  return total;
}

int InferencePlan::last_mask_groups() const {
  int groups = 0;
  for (const PlanOp& op : ops_) groups = std::max(groups, op.last_groups);
  return groups;
}

void InferencePlan::set_coarsen(CoarsenPolicy policy) {
  policy.mac_bias =
      std::clamp(policy.mac_bias, kMinCoarsenMacBias, kMaxCoarsenMacBias);
  coarsen_ = policy;
}

void InferencePlan::set_compute_cap(double cap) {
  compute_cap_ = std::clamp(cap, kMinComputeCap, 1.0);
}

int InferencePlan::last_capped_samples() const {
  int capped = 0;
  for (const PlanOp& op : ops_) capped = std::max(capped, op.last_capped);
  return capped;
}

double predict_batch_ms(const std::vector<OpCost>& ops, double channel_keep,
                        double spatial_keep) {
  double total = 0.0;
  for (const OpCost& c : ops) {
    if (c.prune_block < 0) {
      total += c.ewma_ms;
      continue;
    }
    double keep = channel_keep;
    if (c.prune_spatial) keep *= spatial_keep;
    const double measured = c.measured_units > 1e-4 ? c.measured_units : 1.0;
    total += c.ewma_ms * (keep * c.group_frac) / measured;
  }
  return total;
}

namespace {

// Truncates a kept-index component to `want` entries in canonical
// (ascending-index) order, materializing the keep-all identity first when
// the component is empty. The capacity is pre-reserved to the full domain
// by InferencePlan::reserve(), so a warm truncation never allocates.
void truncate_kept(std::vector<int>& kept, int domain, int want) {
  if (kept.empty()) {
    kept.resize(static_cast<size_t>(domain));
    std::iota(kept.begin(), kept.end(), 0);
  }
  if (static_cast<int>(kept.size()) > want) {
    kept.resize(static_cast<size_t>(want));
  }
}

}  // namespace

std::span<const nn::ConvRuntimeMask> InferencePlan::cap_runtime_masks(
    PlanOp& op, std::span<const nn::ConvRuntimeMask> masks, int n) {
  const ConvGeom& g = op.geom;
  const int out_c = op.out_shape[0];
  const bool spatial = conv_grid_preserving(g);
  const int pos_domain =
      spatial ? g.in_h * g.in_w : static_cast<int>(g.out_positions());
  // Kept-MAC fraction of one sample's mask over the op's dense domains
  // (the k_h*k_w factor cancels). Mirrors the CoarsenGroup accounting:
  // without a spatial grid the position term is pinned dense.
  const auto mac_frac = [&](const nn::ConvRuntimeMask& m) {
    const int kept_ch =
        m.channels.empty() ? g.in_c : static_cast<int>(m.channels.size());
    const int kept_pos = !spatial        ? pos_domain
                         : m.positions.empty()
                             ? pos_domain
                             : static_cast<int>(m.positions.size());
    const int kept_out =
        m.out_channels.empty() ? out_c : static_cast<int>(m.out_channels.size());
    return (static_cast<double>(kept_ch) / g.in_c) *
           (static_cast<double>(kept_pos) / pos_domain) *
           (static_cast<double>(kept_out) / out_c);
  };

  bool any_over = false;
  for (int b = 0; b < n && !any_over; ++b) {
    any_over = mac_frac(masks[static_cast<size_t>(b)]) > compute_cap_;
  }
  if (!any_over) return masks;  // untouched: the uncapped path is bitwise

  if (op.capped_masks.size() < static_cast<size_t>(n)) {
    // Unreserved caller: grows once and converges, like the arena.
    op.capped_masks.resize(static_cast<size_t>(n));
  }
  int capped = 0;
  for (int b = 0; b < n; ++b) {
    const nn::ConvRuntimeMask& src = masks[static_cast<size_t>(b)];
    nn::ConvRuntimeMask& dst = op.capped_masks[static_cast<size_t>(b)];
    // Copies assign into reserved capacity — no allocation once warm.
    dst.channels.assign(src.channels.begin(), src.channels.end());
    dst.positions.assign(src.positions.begin(), src.positions.end());
    dst.out_channels.assign(src.out_channels.begin(), src.out_channels.end());
    const double frac = mac_frac(src);
    if (frac <= compute_cap_) continue;
    ++capped;
    // Clamp channels first, then spatial positions, each to its share of
    // the cap (floored at one kept entry). Kept filters are the op's own
    // static structure and stay untouched. Truncation keeps the lowest
    // indices — arbitrary but deterministic; the attention ordering is
    // not available at the executor, and a capped request is degraded by
    // definition.
    const int kept_ch =
        dst.channels.empty() ? g.in_c : static_cast<int>(dst.channels.size());
    const int kept_pos = !spatial        ? pos_domain
                         : dst.positions.empty()
                             ? pos_domain
                             : static_cast<int>(dst.positions.size());
    const double ch_frac = static_cast<double>(kept_ch) / g.in_c;
    const double rest = frac / ch_frac;  // position x filter share
    int want_ch = static_cast<int>(
        std::floor(compute_cap_ / rest * g.in_c));
    want_ch = std::clamp(want_ch, 1, kept_ch);
    truncate_kept(dst.channels, g.in_c, want_ch);
    if (spatial && mac_frac(dst) > compute_cap_) {
      const double after_ch =
          mac_frac(dst) / (static_cast<double>(kept_pos) / pos_domain);
      int want_pos = static_cast<int>(
          std::floor(compute_cap_ / after_ch * pos_domain));
      want_pos = std::clamp(want_pos, 1, kept_pos);
      truncate_kept(dst.positions, pos_domain, want_pos);
    }
  }
  op.last_capped = capped;
  return {op.capped_masks.data(), static_cast<size_t>(n)};
}

void InferencePlan::set_tile(TilePolicy policy) {
  tile_ = policy;
  for (PlanOp& op : ops_) {
    if (op.kind != OpKind::kConv) continue;
    op.tile_pos = choose_conv_tile(op.geom, op.out_shape[0], tile_);
  }
}

size_t InferencePlan::op_scratch_bytes(int op_index, int n) const {
  AD_CHECK_GE(op_index, 0);
  AD_CHECK_LT(op_index, static_cast<int>(ops_.size()));
  return conv_step_scratch_bytes(ops_[static_cast<size_t>(op_index)], n,
                                 regime_ == NumericRegime::kInt8);
}

int InferencePlan::peak_scratch_op(int n, size_t* op_scratch) const {
  // Mirrors arena_bytes()'s per-op term (activations + gates allocated so
  // far + the op's kernel scratch) so the answer really is "which op sets
  // the arena high-water mark", not merely "which op's scratch is biggest"
  // — a late op with many gates before it can out-peak an earlier op with
  // larger scratch. Returns -1 when the gate-total term (no op's scratch
  // on top) is the peak.
  const size_t nn = static_cast<size_t>(n);
  const size_t act =
      Workspace::align_up(static_cast<size_t>(act_floats_) * nn *
                          sizeof(float));
  size_t best = act + Workspace::align_up(
                          static_cast<size_t>(gate_floats_total_) * nn *
                              sizeof(float) +
                          Workspace::kAlign * ops_.size());
  int arg = -1;
  size_t best_scratch = 0;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const size_t scratch = conv_step_scratch_bytes(
        ops_[i], n, regime_ == NumericRegime::kInt8);
    const size_t gates = Workspace::align_up(
        static_cast<size_t>(gate_floats_before_op_[i]) * nn * sizeof(float) +
        Workspace::kAlign * (i + 1));
    const size_t total = act + gates + scratch;
    if (total > best) {
      best = total;
      arg = static_cast<int>(i);
      best_scratch = scratch;
    }
  }
  if (op_scratch != nullptr) *op_scratch = best_scratch;
  return arg;
}

int InferencePlan::last_mask_groups_raw() const {
  int groups = 0;
  for (const PlanOp& op : ops_) groups = std::max(groups, op.last_groups_raw);
  return groups;
}

int64_t InferencePlan::last_coarsen_extra_macs() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.last_coarsen_extra_macs;
  return total;
}

double InferencePlan::last_coarsen_extra_mac_frac() const {
  const int64_t executed = last_macs();
  if (executed <= 0) return 0.0;
  return static_cast<double>(last_coarsen_extra_macs()) /
         static_cast<double>(executed);
}

int64_t InferencePlan::pack_cache_hits() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.hits.get();
  return total;
}

int64_t InferencePlan::pack_cache_misses() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.misses.get();
  return total;
}

int64_t InferencePlan::pack_cache_bypass() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.bypass.get();
  return total;
}

int64_t InferencePlan::pack_cache_cold_misses() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.cold_misses.get();
  return total;
}

int64_t InferencePlan::pack_cache_capacity_misses() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.capacity_misses.get();
  return total;
}

int64_t InferencePlan::pack_cache_evictions() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.pack_cache.evictions.get();
  return total;
}

std::vector<OpCost> InferencePlan::cost_snapshot() const {
  std::vector<OpCost> out;
  out.reserve(ops_.size());
  for (const PlanOp& op : ops_) {
    OpCost c;
    c.name = op.name;
    c.kind = op.kind;
    c.dense_macs = op.dense_macs;
    c.ewma_ms = op.ewma_ms;
    c.group_frac = op.ewma_group_frac;
    c.measured_units = op.ewma_units;
    c.prune_block = op.prune_block;
    c.prune_spatial = op.prune_spatial;
    c.bytes_per_mac = conv_bytes_per_mac(op, regime_);
    c.regime = regime_;
    out.push_back(std::move(c));
  }
  return out;
}

Tensor InferencePlan::run(const Tensor& x, nn::ExecutionContext& ctx) {
  AD_CHECK_EQ(x.ndim(),
              static_cast<int>(buffers_[static_cast<size_t>(input_buffer_)]
                                   .per_sample_shape.size()) +
                  1)
      << " plan input rank";
  const int n = x.dim(0);
  const PlanBuffer& in_buf = buffers_[static_cast<size_t>(input_buffer_)];
  for (size_t d = 0; d < in_buf.per_sample_shape.size(); ++d) {
    AD_CHECK_EQ(x.dim(static_cast<int>(d) + 1), in_buf.per_sample_shape[d])
        << " plan input shape (op table compiled for another shape)";
  }

  Workspace& ws = ctx.workspace();
  // Everything below the input-staging term of arena_bytes(): the caller
  // already staged (or heap-owns) the input.
  ws.reserve(arena_bytes(n) -
             Workspace::align_up(static_cast<size_t>(shape_floats(in_buf.per_sample_shape)) *
                      static_cast<size_t>(n) * sizeof(float)));
  float* act_base = ws.alloc_floats(act_floats_ * n);

  slots_[static_cast<size_t>(input_buffer_)] = x;
  const auto slot_out = [&](const PlanOp& op) {
    const PlanBuffer& buf = buffers_[static_cast<size_t>(op.output)];
    Shape batch_shape;
    batch_shape.push_back(n);
    for (int d : buf.per_sample_shape) batch_shape.push_back(d);
    Tensor t = Tensor::borrow(act_base + buf.offset_floats * n, batch_shape);
    slots_[static_cast<size_t>(op.output)] = t;
    return t;
  };

  const int threads = compute_threads();
  for (size_t oi = 0; oi < ops_.size(); ++oi) {
    PlanOp& op = ops_[oi];
    const int op_index = static_cast<int>(oi);
    // Phase spans inside the kernels attribute to this op via the
    // thread-local current-op (group workers set their own below).
    obs::ScopedOp op_attr(op_index);
    obs::PhaseScope step_span(obs::Phase::kStep, op_index);
    WallTimer step_timer;
    const Tensor& in = slots_[static_cast<size_t>(op.input)];
    switch (op.kind) {
      case OpKind::kConv: {
        Tensor out = slot_out(op);
        const ConvGeom& g = op.geom;
        const int out_c = op.out_shape[0];
        const int64_t pos = g.out_positions();
        const int64_t in_floats = shape_floats(op.in_shape);
        const int64_t out_floats = shape_floats(op.out_shape);
        const float* wp = op.conv->weight().value.data();
        const float* bp =
            op.conv->has_bias() ? op.conv->bias().value.data() : nullptr;
        const float* res_base =
            op.residual >= 0
                ? slots_[static_cast<size_t>(op.residual)].data()
                : nullptr;
        std::span<const nn::ConvRuntimeMask> masks =
            op.conv->take_runtime_masks();
        const Workspace::Mark scratch = ws.mark();
        // Int8 regime: channel/filter-masked groups and the dense path run
        // the quantized kernels; groups carrying spatial positions fall
        // back to the f32 shift-GEMM (a documented mixed-regime step — the
        // shift-GEMM's scattered accumulation has no int8 formulation that
        // preserves its skip ratio).
        const bool int8 = regime_ == NumericRegime::kInt8;
        int64_t macs = 0;
        if (!masks.empty()) {
          AD_CHECK_EQ(static_cast<int>(masks.size()), n)
              << " runtime mask count vs batch size";
          // Per-request compute cap: samples demanding more than the
          // kept-MAC ceiling get their masks clamped before bucketing, so
          // everything downstream (grouping, kernels, stats) sees the
          // clamped sets. When no sample exceeds the cap the original
          // span passes through untouched — the uncapped path stays
          // bitwise identical to an uncapped plan.
          op.last_capped = 0;
          if (compute_cap_ < 1.0) {
            masks = cap_runtime_masks(op, masks, n);
          }
          // Arena memory is uninitialized; pruned positions must stay zero.
          std::memset(out.data(), 0,
                      static_cast<size_t>(out.size()) * sizeof(float));
          const nn::ConvIdentityIndices ids{iota_.data(), iota_.data(),
                                            iota_.data()};
          // Bucket the batch by canonical mask key: a drop ratio quantizes
          // the samples into a handful of distinct kept sets, and every
          // bucket executes as ONE compacted multi-sample GEMM instead of
          // per-sample gather/pack/dispatch. Sorting (key, index) keeps
          // the partition deterministic; equal keys are confirmed with an
          // exact kept-set comparison, so a hash collision can only split
          // a bucket, never corrupt one.
          uint64_t* keys = ws.alloc<uint64_t>(n);
          int* order = ws.alloc<int>(n);
          for (int b = 0; b < n; ++b) {
            keys[b] = core::mask_key(masks[static_cast<size_t>(b)]);
            order[b] = b;
          }
          std::sort(order, order + n, [&](int a, int b) {
            return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
          });
          int* group_begin = ws.alloc<int>(n + 1);
          int groups = 0;
          group_begin[0] = 0;
          for (int i = 1; i <= n; ++i) {
            if (i == n || keys[order[i]] != keys[order[i - 1]] ||
                !core::mask_equal(masks[static_cast<size_t>(order[i])],
                                  masks[static_cast<size_t>(order[i - 1])])) {
              group_begin[++groups] = i;
            }
          }
          // Similar-mask union coarsening: merge near-identical buckets
          // into union-mask clusters when the latency model predicts a
          // win (fewer group dispatches beating the union-added MACs).
          // Bitwise-safe for hard top-k gates: the union's extra
          // channels/positions were zeroed upstream, their products are
          // exact zeros, and the f32 microkernel's strictly sequential
          // per-element accumulation (no FMA, accumulators seeded from
          // +0) preserves every real partial sum bit-for-bit when exact
          // zeros interleave. gmask != nullptr selects the coarsened
          // schedule below.
          op.last_groups_raw = groups;
          op.last_coarsen_extra_macs = 0;
          op.last_coarsen_extra_ch = 0;
          op.last_coarsen_pred_before = 0.0;
          op.last_coarsen_pred_after = 0.0;
          const nn::ConvRuntimeMask* const* gmask = nullptr;
          // Capped passes never coarsen: a union mask could re-add
          // channels the cap just truncated — whose upstream activations
          // are NOT zero — silently undoing the compute ceiling (and,
          // unlike ordinary coarsening, changing values).
          if (coarsen_.mode == CoarsenMode::kAuto && groups >= 2 &&
              op.last_capped == 0) {
            // The coarsened order/bounds and per-group mask pointers must
            // outlive the planner scratch (the kernels read them), so
            // they are carved BEFORE the planner's rewind mark.
            int* c_order = ws.alloc<int>(n);
            int* c_begin = ws.alloc<int>(n + 1);
            const nn::ConvRuntimeMask** gmask_rw =
                ws.alloc<const nn::ConvRuntimeMask*>(n);
            const Workspace::Mark coarsen_mark = ws.mark();
            const bool spatial = conv_grid_preserving(g);
            const int ch_words = core::mask_bits_words(g.in_c);
            const int pos_domain = g.in_h * g.in_w;
            const int pos_words =
                spatial ? core::mask_bits_words(pos_domain) : 0;
            const int wpg = ch_words + pos_words;
            uint64_t* base_bits =
                ws.alloc<uint64_t>(static_cast<int64_t>(groups) * wpg);
            uint64_t* work_bits =
                ws.alloc<uint64_t>(static_cast<int64_t>(groups) * wpg);
            CoarsenGroup* cg = ws.alloc<CoarsenGroup>(groups);
            int* cluster = ws.alloc<int>(groups);
            int* iscratch = ws.alloc<int>(coarsen_iscratch_ints(groups));
            for (int gi = 0; gi < groups; ++gi) {
              const nn::ConvRuntimeMask& m =
                  masks[static_cast<size_t>(order[group_begin[gi]])];
              uint64_t* row = base_bits + static_cast<int64_t>(gi) * wpg;
              core::pack_kept_bits(m.channels, g.in_c, row);
              if (pos_words > 0) {
                core::pack_kept_bits(m.positions, pos_domain,
                                     row + ch_words);
              }
              CoarsenGroup& cgi = cg[gi];
              cgi.size = group_begin[gi + 1] - group_begin[gi];
              cgi.kept_ch = m.channels.empty()
                                ? g.in_c
                                : static_cast<int>(m.channels.size());
              cgi.kept_pos = !spatial          ? static_cast<int>(pos)
                             : m.positions.empty()
                                 ? pos_domain
                                 : static_cast<int>(m.positions.size());
              cgi.kept_out = m.out_channels.empty()
                                 ? out_c
                                 : static_cast<int>(m.out_channels.size());
              cgi.pos_partial = pos_words > 0 && !m.positions.empty();
              cgi.out_channels = &m.out_channels;
            }
            std::memcpy(work_bits, base_bits,
                        sizeof(uint64_t) * static_cast<size_t>(groups) *
                            static_cast<size_t>(wpg));
            CoarsenCost cc;
            cc.kk = static_cast<double>(g.k_h * g.k_w);
            const double bpm = conv_bytes_per_mac(op, regime_);
            if (bpm > 0.0) {
              cc.pack_macs_per_elem = (int8 ? 1.0 : 4.0) / bpm;
            }
            cc.overhead_macs = kCoarsenOverheadMacs;
            cc.threads = threads;
            const CoarsenDecision dec =
                coarsen_plan(cg, groups, ch_words, pos_words, cc,
                             coarsen_.mac_bias, work_bits, cluster,
                             iscratch);
            // Zero-growth invariant: coarsening only ever REDUCES the
            // group count, so arena_bytes(n)'s max-over-G kernel worst
            // cases still bound the coarsened schedule.
            AD_CHECK_LE(dec.clusters, groups);
            op.last_coarsen_pred_before = dec.predicted_before;
            op.last_coarsen_pred_after = dec.predicted_after;
            if (dec.clusters < groups) {
              op.last_coarsen_extra_macs = dec.extra_macs;
              if (op.coarse_masks.size() <
                  static_cast<size_t>(dec.clusters)) {
                // Unreserved caller: grows once and converges, like the
                // arena. reserve() pre-sizes this to n.
                op.coarse_masks.resize(static_cast<size_t>(dec.clusters));
              }
              // The planner clobbered work rows past its argmin state, so
              // multi-member clusters re-union their members' ORIGINAL
              // rows into the root's work row.
              int* csize = iscratch;               // member buckets
              int* cfirst = iscratch + groups;     // root bucket index
              int* scount = iscratch + 2 * groups; // samples per cluster
              int* cursor = iscratch + 3 * groups;
              for (int c = 0; c < dec.clusters; ++c) {
                csize[c] = 0;
                cfirst[c] = -1;
                scount[c] = 0;
              }
              for (int gi = 0; gi < groups; ++gi) {
                const int c = cluster[gi];
                if (cfirst[c] < 0) cfirst[c] = gi;
                ++csize[c];
                scount[c] += cg[gi].size;
                uint64_t* urow =
                    work_bits + static_cast<int64_t>(cfirst[c]) * wpg;
                const uint64_t* brow =
                    base_bits + static_cast<int64_t>(gi) * wpg;
                if (gi == cfirst[c]) {
                  std::memcpy(urow, brow,
                              sizeof(uint64_t) * static_cast<size_t>(wpg));
                } else {
                  core::union_bits_inplace(urow, brow, wpg);
                }
              }
              // Coarsened sample partition: clusters in root-bucket order
              // (dense ids are numbered by smallest member), members in
              // bucket order, samples in the key-sorted order — fully
              // deterministic.
              c_begin[0] = 0;
              for (int c = 0; c < dec.clusters; ++c) {
                c_begin[c + 1] = c_begin[c] + scount[c];
                cursor[c] = c_begin[c];
              }
              for (int gi = 0; gi < groups; ++gi) {
                const int c = cluster[gi];
                for (int i = group_begin[gi]; i < group_begin[gi + 1];
                     ++i) {
                  c_order[cursor[c]++] = order[i];
                }
              }
              int64_t extra_ch = 0;
              for (int gi = 0; gi < groups; ++gi) {
                const int c = cluster[gi];
                if (csize[c] < 2) {
                  if (gi == cfirst[c]) {
                    gmask_rw[c] =
                        &masks[static_cast<size_t>(order[group_begin[gi]])];
                  }
                  continue;
                }
                const uint64_t* urow =
                    work_bits + static_cast<int64_t>(cfirst[c]) * wpg;
                extra_ch += static_cast<int64_t>(
                                core::popcount_words(urow, ch_words) -
                                cg[gi].kept_ch) *
                            cg[gi].size;
                if (gi != cfirst[c]) continue;
                nn::ConvRuntimeMask& um =
                    op.coarse_masks[static_cast<size_t>(c)];
                core::bits_to_kept(urow, g.in_c, um.channels);
                if (pos_words > 0) {
                  core::bits_to_kept(urow + ch_words, pos_domain,
                                     um.positions);
                  // A union of PROPER position subsets that saturates the
                  // domain must stay on the members' shift-GEMM path: keep
                  // it as an explicit full index set instead of the
                  // keep-all canonical form, which would switch the group
                  // to the im2col channel path and its different (though
                  // value-equal) accumulation order. Fits the reserved
                  // pos_domain capacity, so no allocation once warm.
                  if (cg[gi].pos_partial && um.positions.empty()) {
                    um.positions.resize(static_cast<size_t>(pos_domain));
                    std::iota(um.positions.begin(), um.positions.end(), 0);
                  }
                } else {
                  um.positions.clear();
                }
                // Merge eligibility required equal kept out-filter sets,
                // so the root's vector is the cluster's (copy into
                // reserved capacity — no allocation once warm).
                um.out_channels = *cg[gi].out_channels;
                gmask_rw[c] = &um;
              }
              op.last_coarsen_extra_ch = extra_ch;
              gmask = gmask_rw;
              order = c_order;
              group_begin = c_begin;
              groups = dec.clusters;
            }
            ws.rewind(coarsen_mark);
          }
          const int width = group_parallel_width(threads, groups);
          if (width >= 2) {
            // Cross-group parallel: whole groups dispatch to pool workers
            // (worker w runs groups w, w+width, ...), each over a private
            // arena slice carved here on the owner thread — workers never
            // touch the owning arena or the shared pack cache, and every
            // kernel-internal parallel_for runs inline under the
            // nested-dispatch guard. Groups cover disjoint samples, so
            // this is bitwise identical to sequential group order.
            ensure_group_slices();  // no-op when reserved; unreserved
                                    // callers converge like the arena
            int max_gs = 1;
            for (int gi = 0; gi < groups; ++gi) {
              max_gs = std::max(max_gs,
                                group_begin[gi + 1] - group_begin[gi]);
            }
            // Slices are fixed-capacity external views (overflow is a hard
            // error, not a growth), so size them for the spatial path if
            // any mask of this pass actually carries positions — even on
            // an op the sizing model believes cannot receive them.
            bool any_spatial = op.prune_spatial;
            for (int b = 0; b < n && !any_spatial; ++b) {
              any_spatial = !masks[static_cast<size_t>(b)].positions.empty();
            }
            const size_t slice_bytes = nn::conv_group_masked_slice_bytes(
                g, out_c, max_gs, int8, op.tile_pos, any_spatial);
            char* slab =
                ws.alloc<char>(static_cast<int64_t>(width) *
                               static_cast<int64_t>(slice_bytes));
            // One cache line per worker tally: plain adjacent int64s here
            // would false-share across all active workers on every group.
            struct alignas(64) WorkerTally {
              int64_t macs = 0;
            };
            WorkerTally worker_macs[kMaxGroupWorkers];
            parallel_for(
                0, width,
                [&](int64_t w0, int64_t w1) {
                  for (int64_t w = w0; w < w1; ++w) {
                    // Pool workers carry no current-op: establish it so
                    // the group spans and the kernels' nested phase spans
                    // attribute to this conv step.
                    obs::ScopedOp worker_attr(op_index);
                    Workspace& slice = group_slices_->slot[w].ws;
                    slice.bind_external(slab + w * slice_bytes, slice_bytes);
                    int64_t local = 0;
                    for (int gi = static_cast<int>(w); gi < groups;
                         gi += width) {
                      const int gb = group_begin[gi];
                      const int ge = group_begin[gi + 1];
                      obs::PhaseScope group_span(obs::Phase::kGroup,
                                                 op_index);
                      const nn::ConvRuntimeMask& gm =
                          gmask != nullptr
                              ? *gmask[gi]
                              : masks[static_cast<size_t>(order[gb])];
                      const std::span<const int> gsamples(
                          order + gb, static_cast<size_t>(ge - gb));
                      if (int8 && gm.positions.empty()) {
                        local += nn::conv_group_masked_i8(
                            in.data(), in_floats, g, op.int8_w, out_c, bp,
                            gm, gsamples, ids, /*cache=*/nullptr,
                            out.data(), out_floats, slice, op.tile_pos);
                      } else {
                        local += nn::conv_group_masked(
                            in.data(), in_floats, g, wp, out_c, bp, gm,
                            gsamples, ids, /*cache=*/nullptr, out.data(),
                            out_floats, slice, op.tile_pos);
                      }
                    }
                    worker_macs[w].macs = local;
                  }
                },
                /*grain=*/1);
            for (int w = 0; w < width; ++w) macs += worker_macs[w].macs;
            op.pack_cache.bypass.add(groups);
          } else {
            for (int gi = 0; gi < groups; ++gi) {
              const int gb = group_begin[gi];
              const int ge = group_begin[gi + 1];
              obs::PhaseScope group_span(obs::Phase::kGroup, op_index);
              const nn::ConvRuntimeMask& gm =
                  gmask != nullptr ? *gmask[gi]
                                   : masks[static_cast<size_t>(order[gb])];
              const std::span<const int> gsamples(
                  order + gb, static_cast<size_t>(ge - gb));
              if (int8 && gm.positions.empty()) {
                macs += nn::conv_group_masked_i8(
                    in.data(), in_floats, g, op.int8_w, out_c, bp, gm,
                    gsamples, ids, &op.pack_cache, out.data(), out_floats,
                    ws, op.tile_pos);
              } else {
                macs += nn::conv_group_masked(in.data(), in_floats, g, wp,
                                              out_c, bp, gm, gsamples, ids,
                                              &op.pack_cache, out.data(),
                                              out_floats, ws, op.tile_pos);
              }
            }
          }
          op.last_groups = groups;
        } else {
          if (int8) {
            macs = nn::conv_batch_dense_i8(in.data(), in_floats, g,
                                           op.int8_w, out_c, bp, n,
                                           out.data(), out_floats, ws,
                                           op.tile_pos);
          } else {
            macs = nn::conv_batch_dense(in.data(), in_floats, g, wp, out_c,
                                        bp, n, out.data(), out_floats, ws,
                                        op.tile_pos);
          }
          op.last_groups = 0;
          op.last_groups_raw = 0;
          op.last_capped = 0;
          op.last_coarsen_extra_macs = 0;
          op.last_coarsen_extra_ch = 0;
          op.last_coarsen_pred_before = 0.0;
          op.last_coarsen_pred_after = 0.0;
        }
        if (op.fuse_bn || op.fuse_relu || res_base != nullptr) {
          const nn::FusedEpilogueParams ep = epilogue_params(op);
          obs::PhaseScope epilogue_span(obs::Phase::kEpilogue, op_index);
          parallel_for(
              0, n,
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b) {
                  nn::fused_epilogue(out.data() + b * out_floats,
                                     res_base != nullptr
                                         ? res_base + b * out_floats
                                         : nullptr,
                                     out_c, pos, ep);
                }
              },
              /*grain=*/1);
        }
        ws.rewind(scratch);
        op.conv->note_external_execution(macs, !masks.empty());
        op.last_macs = macs;
        break;
      }
      case OpKind::kGate: {
        // The gate module runs itself (identical to the module walk, so
        // masks and outputs match bitwise) and hands keep sets to its
        // consumer Conv2d, whose fused step picks them up next.
        slots_[static_cast<size_t>(op.output)] =
            op.gate->forward(in, ctx);
        break;
      }
      case OpKind::kMaxPool: {
        Tensor out = slot_out(op);
        nn::max_pool_forward_into(in.data(), n, op.in_shape[0],
                                  op.in_shape[1], op.in_shape[2], op.pool_k,
                                  op.pool_stride, out.data());
        break;
      }
      case OpKind::kGlobalAvgPool: {
        Tensor out = slot_out(op);
        ops::channel_mean_nchw_into(in, out.data());
        break;
      }
      case OpKind::kLinear: {
        Tensor out = slot_out(op);
        const int in_f = op.linear->in_features();
        const int out_f = op.linear->out_features();
        // y[N, out] = x[N, in] * W[out, in]^T — the Linear module's exact
        // kernel call and bias loop.
        gemm_nt(n, out_f, in_f, 1.f, in.data(),
                op.linear->weight().value.data(), 0.f, out.data());
        if (op.linear->has_bias()) {
          const float* bp = op.linear->bias().value.data();
          for (int i = 0; i < n; ++i) {
            float* row = out.data() + static_cast<int64_t>(i) * out_f;
            for (int j = 0; j < out_f; ++j) row[j] += bp[j];
          }
        }
        op.last_macs = static_cast<int64_t>(n) * out_f * in_f;
        op.linear->note_external_execution(op.last_macs);
        break;
      }
      case OpKind::kShortcut: {
        Tensor out = slot_out(op);
        nn::shortcut_subsample_into(in.data(), n, op.in_shape[0],
                                    op.in_shape[1], op.in_shape[2],
                                    op.out_shape[0], op.shortcut_stride,
                                    out.data());
        break;
      }
    }
    const double ms = step_timer.millis();
    // Raw time and its cost units (keep fraction x group fraction) are
    // smoothed as separate series; the cost model divides the two
    // averages once at prediction time (see the ewma_ms contract).
    double units = 1.0;
    double group_frac = -1.0;  // < 0: this run carried no masks
    if (op.kind == OpKind::kConv && op.last_macs > 0 && op.dense_macs > 0) {
      units = static_cast<double>(op.last_macs) /
              (static_cast<double>(op.dense_macs) * static_cast<double>(n));
      if (op.last_groups > 0) {
        // Cross-group parallelism makes group cost the CRITICAL-PATH
        // worker, not the group sum: with W workers the longest worker
        // runs ceil(G / W) group dispatches, so that — not G — is the
        // dispatch count the measured time reflects.
        const int width = group_parallel_width(threads, op.last_groups);
        group_frac =
            static_cast<double>((op.last_groups + width - 1) / width) /
            static_cast<double>(n);
        units *= group_frac;
      }
    }
    if (op.ewma_ms == 0.0) {
      // Seed every series from the first sample — blending group_frac
      // from its 1.0 prior while units seeds to the measured value would
      // make the cost model's numerator and denominator disagree for
      // many batches.
      op.ewma_ms = ms;
      op.ewma_units = units;
      if (group_frac >= 0.0) op.ewma_group_frac = group_frac;
    } else {
      op.ewma_ms = 0.8 * op.ewma_ms + 0.2 * ms;
      op.ewma_units = 0.8 * op.ewma_units + 0.2 * units;
      if (group_frac >= 0.0) {
        op.ewma_group_frac = 0.8 * op.ewma_group_frac + 0.2 * group_frac;
      }
    }
  }
  return slots_[static_cast<size_t>(output_buffer_)];
}

std::string InferencePlan::to_string() const {
  std::ostringstream os;
  os << "InferencePlan: " << ops_.size() << " ops, "
     << dense_macs_per_sample() << " dense MACs/sample, "
     << activation_floats_per_sample() << " activation floats/sample, "
     << "arena " << arena_bytes(1) << " B at batch 1, "
     << "simd " << nn::simd_lane_width() << "-lane ("
     << nn::simd_isa_name() << "), regime " << regime_name(regime_);
  if (regime_ == NumericRegime::kInt8) {
    os << " (igemm " << nn::int8_isa_name() << ")";
  }
  os << ", vnni " << (nn::cpu_supports_vnni() ? "yes" : "no")
     << ", group workers <= "
     << group_parallel_width(compute_threads(), kMaxGroupWorkers)
     << ", tile " << tile_mode_name(tile_.mode);
  if (tile_.mode == TileMode::kFixed) os << "(" << tile_.n << ")";
  os << "\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "%-3s %-9s %-18s %-16s %-14s %12s %10s %6s %6s\n", "#", "op",
                "name", "out(shape)", "epilogue", "MACs/sample", "ewma_ms",
                "groups", "tile");
  os << line;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const PlanOp& op = ops_[i];
    std::string shape_str;
    for (size_t d = 0; d < op.out_shape.size(); ++d) {
      shape_str += (d == 0 ? "" : "x") + std::to_string(op.out_shape[d]);
    }
    std::string fused;
    if (op.kind == OpKind::kConv) {
      if (op.fuse_bn) fused += "+bn";
      if (op.residual >= 0) fused += "+res";
      if (op.fuse_relu) fused += "+relu";
      if (op.prune_block >= 0) {
        fused += "(m" + std::to_string(op.prune_block) + ")";
      }
    }
    // groups: distinct-mask buckets of the op's last run ("-" = ran dense
    // or has not run yet).
    const std::string groups_str =
        op.last_groups > 0 ? std::to_string(op.last_groups) : "-";
    // tile: output-position tile width of the spatially-tiled lowering
    // ("-" = untiled: non-conv op, small grid, or --tile=off).
    const std::string tile_str =
        op.tile_pos > 0 ? std::to_string(op.tile_pos) : "-";
    std::snprintf(line, sizeof(line),
                  "%-3zu %-9s %-18s %-16s %-14s %12lld %10.4f %6s %6s\n", i,
                  op_kind_name(op.kind), op.name.c_str(), shape_str.c_str(),
                  fused.c_str(), static_cast<long long>(op.dense_macs),
                  op.ewma_ms, groups_str.c_str(), tile_str.c_str());
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "weight-pack cache: %lld hits / %lld misses "
                "(%lld cold, %lld capacity) / %lld evictions / %lld "
                "bypassed (parallel groups); last pass mask groups: %d\n",
                static_cast<long long>(pack_cache_hits()),
                static_cast<long long>(pack_cache_misses()),
                static_cast<long long>(pack_cache_cold_misses()),
                static_cast<long long>(pack_cache_capacity_misses()),
                static_cast<long long>(pack_cache_evictions()),
                static_cast<long long>(pack_cache_bypass()),
                last_mask_groups());
  os << line;
  std::snprintf(line, sizeof(line),
                "mask coarsening: %s (mac bias %.2f); last pass groups "
                "%d -> %d, union-added MACs %lld (%.2f%% of executed)\n",
                coarsen_mode_name(coarsen_.mode), coarsen_.mac_bias,
                last_mask_groups_raw(), last_mask_groups(),
                static_cast<long long>(last_coarsen_extra_macs()),
                100.0 * last_coarsen_extra_mac_frac());
  os << line;
  return os.str();
}

}  // namespace antidote::plan
