#include "plan/plan.h"

#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>

#include "base/error.h"
#include "base/timer.h"
#include "nn/conv_kernels.h"
#include "nn/pooling.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace antidote::plan {

namespace {

// Fused epilogue for one sample of a conv step: BatchNorm (the exact
// BatchNorm2d eval expression), residual add, ReLU — applied on the
// cache-hot GEMM/scatter output instead of as separate full-tensor passes.
// Element order matches the module walk op for op, so fused outputs are
// bitwise identical to unfused execution.
void apply_epilogue(const PlanOp& op, float* yb, const float* resb,
                    int out_c, int64_t pos) {
  const bool bn = op.fuse_bn;
  const bool relu = op.fuse_relu;
  for (int ch = 0; ch < out_c; ++ch) {
    float* row = yb + static_cast<int64_t>(ch) * pos;
    const float* rrow =
        resb != nullptr ? resb + static_cast<int64_t>(ch) * pos : nullptr;
    const float mean_v = bn ? op.bn.mean[static_cast<size_t>(ch)] : 0.f;
    const float inv_std = bn ? op.bn.inv_std[static_cast<size_t>(ch)] : 0.f;
    const float gamma = bn ? op.bn.gamma[ch] : 0.f;
    const float beta = bn ? op.bn.beta[ch] : 0.f;
    for (int64_t j = 0; j < pos; ++j) {
      float v = row[j];
      if (bn) {
        const float xh = (v - mean_v) * inv_std;
        v = gamma * xh + beta;
      }
      if (rrow != nullptr) v += rrow[j];
      if (relu) v = v > 0.f ? v : 0.f;
      row[j] = v;
    }
  }
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv: return "conv";
    case OpKind::kGate: return "gate";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kGlobalAvgPool: return "gap";
    case OpKind::kLinear: return "linear";
    case OpKind::kShortcut: return "shortcut";
  }
  return "?";
}

size_t InferencePlan::arena_bytes(int n) const {
  AD_CHECK_GT(n, 0);
  const size_t nn = static_cast<size_t>(n);
  // Room for the caller-staged input batch plus the pass itself.
  const size_t input_bytes = Workspace::align_up(
      static_cast<size_t>(
          shape_floats(buffers_[static_cast<size_t>(input_buffer_)]
                           .per_sample_shape)) *
      nn * sizeof(float));
  // Pass footprint: the activation region is one allocation; each gate
  // output is one allocation (bounded with one alignment pad each); the
  // kernel scratch of op i sits on top of the gates allocated before it.
  const size_t act = Workspace::align_up(static_cast<size_t>(act_floats_) * nn *
                              sizeof(float));
  size_t peak = act + Workspace::align_up(static_cast<size_t>(gate_floats_total_) * nn *
                               sizeof(float) +
                               Workspace::kAlign * ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    const size_t gates = Workspace::align_up(
        static_cast<size_t>(gate_floats_before_op_[i]) * nn * sizeof(float) +
        Workspace::kAlign * (i + 1));
    peak = std::max(peak, act + gates + op_scratch_bytes_[i]);
  }
  return input_bytes + peak;
}

void InferencePlan::reserve(Workspace& ws, int n) const {
  ws.reserve(arena_bytes(n));
}

int64_t InferencePlan::last_macs() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.last_macs;
  return total;
}

int64_t InferencePlan::dense_macs_per_sample() const {
  int64_t total = 0;
  for (const PlanOp& op : ops_) total += op.dense_macs;
  return total;
}

std::vector<OpCost> InferencePlan::cost_snapshot() const {
  std::vector<OpCost> out;
  out.reserve(ops_.size());
  for (const PlanOp& op : ops_) {
    OpCost c;
    c.name = op.name;
    c.kind = op.kind;
    c.dense_macs = op.dense_macs;
    c.ewma_ms = op.ewma_ms;
    c.prune_block = op.prune_block;
    c.prune_spatial = op.prune_spatial;
    out.push_back(std::move(c));
  }
  return out;
}

Tensor InferencePlan::run(const Tensor& x, nn::ExecutionContext& ctx) {
  AD_CHECK_EQ(x.ndim(),
              static_cast<int>(buffers_[static_cast<size_t>(input_buffer_)]
                                   .per_sample_shape.size()) +
                  1)
      << " plan input rank";
  const int n = x.dim(0);
  const PlanBuffer& in_buf = buffers_[static_cast<size_t>(input_buffer_)];
  for (size_t d = 0; d < in_buf.per_sample_shape.size(); ++d) {
    AD_CHECK_EQ(x.dim(static_cast<int>(d) + 1), in_buf.per_sample_shape[d])
        << " plan input shape (op table compiled for another shape)";
  }

  Workspace& ws = ctx.workspace();
  // Everything below the input-staging term of arena_bytes(): the caller
  // already staged (or heap-owns) the input.
  ws.reserve(arena_bytes(n) -
             Workspace::align_up(static_cast<size_t>(shape_floats(in_buf.per_sample_shape)) *
                      static_cast<size_t>(n) * sizeof(float)));
  float* act_base = ws.alloc_floats(act_floats_ * n);

  slots_[static_cast<size_t>(input_buffer_)] = x;
  const auto slot_out = [&](const PlanOp& op) {
    const PlanBuffer& buf = buffers_[static_cast<size_t>(op.output)];
    Shape batch_shape;
    batch_shape.push_back(n);
    for (int d : buf.per_sample_shape) batch_shape.push_back(d);
    Tensor t = Tensor::borrow(act_base + buf.offset_floats * n, batch_shape);
    slots_[static_cast<size_t>(op.output)] = t;
    return t;
  };

  for (PlanOp& op : ops_) {
    WallTimer step_timer;
    const Tensor& in = slots_[static_cast<size_t>(op.input)];
    switch (op.kind) {
      case OpKind::kConv: {
        Tensor out = slot_out(op);
        const ConvGeom& g = op.geom;
        const int out_c = op.out_shape[0];
        const int64_t pos = g.out_positions();
        const int64_t in_floats = shape_floats(op.in_shape);
        const int64_t out_floats = shape_floats(op.out_shape);
        const float* wp = op.conv->weight().value.data();
        const float* bp =
            op.conv->has_bias() ? op.conv->bias().value.data() : nullptr;
        const float* res_base =
            op.residual >= 0
                ? slots_[static_cast<size_t>(op.residual)].data()
                : nullptr;
        const std::span<const nn::ConvRuntimeMask> masks =
            op.conv->take_runtime_masks();
        const Workspace::Mark scratch = ws.mark();
        int64_t macs = 0;
        if (!masks.empty()) {
          AD_CHECK_EQ(static_cast<int>(masks.size()), n)
              << " runtime mask count vs batch size";
          // Arena memory is uninitialized; pruned positions must stay zero.
          std::memset(out.data(), 0,
                      static_cast<size_t>(out.size()) * sizeof(float));
          int* all_channels = ws.alloc<int>(g.in_c);
          std::iota(all_channels, all_channels + g.in_c, 0);
          int* all_out = ws.alloc<int>(out_c);
          std::iota(all_out, all_out + out_c, 0);
          int* all_positions = ws.alloc<int>(pos);
          std::iota(all_positions, all_positions + pos, 0);
          const nn::ConvIdentityIndices ids{all_channels, all_out,
                                            all_positions};
          for (int b = 0; b < n; ++b) {
            float* yb = out.data() + static_cast<int64_t>(b) * out_floats;
            macs += nn::conv_sample_masked(
                in.data() + static_cast<int64_t>(b) * in_floats, g, wp, out_c,
                bp, masks[static_cast<size_t>(b)], ids, yb, ws);
            apply_epilogue(op, yb,
                           res_base != nullptr
                               ? res_base + static_cast<int64_t>(b) * out_floats
                               : nullptr,
                           out_c, pos);
          }
        } else {
          float* cols = ws.alloc_floats(g.patch_rows() * pos);
          for (int b = 0; b < n; ++b) {
            float* yb = out.data() + static_cast<int64_t>(b) * out_floats;
            macs += nn::conv_sample_dense(
                in.data() + static_cast<int64_t>(b) * in_floats, g, wp, out_c,
                bp, cols, yb, ws);
            apply_epilogue(op, yb,
                           res_base != nullptr
                               ? res_base + static_cast<int64_t>(b) * out_floats
                               : nullptr,
                           out_c, pos);
          }
        }
        ws.rewind(scratch);
        op.conv->note_external_execution(macs, !masks.empty());
        op.last_macs = macs;
        break;
      }
      case OpKind::kGate: {
        // The gate module runs itself (identical to the module walk, so
        // masks and outputs match bitwise) and hands keep sets to its
        // consumer Conv2d, whose fused step picks them up next.
        slots_[static_cast<size_t>(op.output)] =
            op.gate->forward(in, ctx);
        break;
      }
      case OpKind::kMaxPool: {
        Tensor out = slot_out(op);
        nn::max_pool_forward_into(in.data(), n, op.in_shape[0],
                                  op.in_shape[1], op.in_shape[2], op.pool_k,
                                  op.pool_stride, out.data());
        break;
      }
      case OpKind::kGlobalAvgPool: {
        Tensor out = slot_out(op);
        ops::channel_mean_nchw_into(in, out.data());
        break;
      }
      case OpKind::kLinear: {
        Tensor out = slot_out(op);
        const int in_f = op.linear->in_features();
        const int out_f = op.linear->out_features();
        // y[N, out] = x[N, in] * W[out, in]^T — the Linear module's exact
        // kernel call and bias loop.
        gemm_nt(n, out_f, in_f, 1.f, in.data(),
                op.linear->weight().value.data(), 0.f, out.data());
        if (op.linear->has_bias()) {
          const float* bp = op.linear->bias().value.data();
          for (int i = 0; i < n; ++i) {
            float* row = out.data() + static_cast<int64_t>(i) * out_f;
            for (int j = 0; j < out_f; ++j) row[j] += bp[j];
          }
        }
        op.last_macs = static_cast<int64_t>(n) * out_f * in_f;
        op.linear->note_external_execution(op.last_macs);
        break;
      }
      case OpKind::kShortcut: {
        Tensor out = slot_out(op);
        nn::shortcut_subsample_into(in.data(), n, op.in_shape[0],
                                    op.in_shape[1], op.in_shape[2],
                                    op.out_shape[0], op.shortcut_stride,
                                    out.data());
        break;
      }
    }
    double ms = step_timer.millis();
    if (op.kind == OpKind::kConv && op.last_macs > 0 && op.dense_macs > 0) {
      // Normalize to dense-equivalent cost (see the ewma_ms contract).
      const double fraction =
          static_cast<double>(op.last_macs) /
          (static_cast<double>(op.dense_macs) * static_cast<double>(n));
      if (fraction > 1e-3) ms /= fraction;
    }
    op.ewma_ms = op.ewma_ms == 0.0 ? ms : 0.8 * op.ewma_ms + 0.2 * ms;
  }
  return slots_[static_cast<size_t>(output_buffer_)];
}

std::string InferencePlan::to_string() const {
  std::ostringstream os;
  os << "InferencePlan: " << ops_.size() << " ops, "
     << dense_macs_per_sample() << " dense MACs/sample, "
     << activation_floats_per_sample() << " activation floats/sample, "
     << "arena " << arena_bytes(1) << " B at batch 1\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-3s %-9s %-18s %-16s %-14s %12s %10s\n",
                "#", "op", "name", "out(shape)", "fused", "MACs/sample",
                "ewma_ms");
  os << line;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const PlanOp& op = ops_[i];
    std::string shape_str;
    for (size_t d = 0; d < op.out_shape.size(); ++d) {
      shape_str += (d == 0 ? "" : "x") + std::to_string(op.out_shape[d]);
    }
    std::string fused;
    if (op.kind == OpKind::kConv) {
      if (op.fuse_bn) fused += "+bn";
      if (op.residual >= 0) fused += "+res";
      if (op.fuse_relu) fused += "+relu";
      if (op.prune_block >= 0) {
        fused += "(m" + std::to_string(op.prune_block) + ")";
      }
    }
    std::snprintf(line, sizeof(line),
                  "%-3zu %-9s %-18s %-16s %-14s %12lld %10.4f\n", i,
                  op_kind_name(op.kind), op.name.c_str(), shape_str.c_str(),
                  fused.c_str(), static_cast<long long>(op.dense_macs),
                  op.ewma_ms);
    os << line;
  }
  return os.str();
}

}  // namespace antidote::plan
